"""Worker-side stage execution on the simulated cluster.

A stage is a pipelined chain of narrow operators, optionally headed by a
source (which reads the job input from distributed storage) or a wide
operator (which shuffles all partitions).  Execution

1. loads the input partitions — memory hits cost memory-read time, misses
   cost disk-read time plus promotion (which may trigger evictions),
2. runs the real operator functions partition by partition, charging the
   operator cost model against the node's compute rate, and
3. stores the output partitions, which may again evict under pressure.

Per-node times are combined into stage *wall* times (the slowest node
gates the stage), after straggler stretching and speculative mitigation.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..cluster.stragglers import apply_stragglers
from ..core.datasets import Dataset, Partition, split_payload
from ..core.errors import SchedulingError
from ..core.operators import Join, Operator, Sink, Source
from ..core.stages import Stage
from .backends import ExecutionBackend, make_backend
from .job import EngineConfig


def _split_bytes(total: int, count: int) -> List[int]:
    """Split ``total`` nominal bytes across ``count`` partitions exactly.

    The remainder lands on the first partitions so that
    ``sum(_split_bytes(t, n)) == max(0, t)`` always holds (the old
    ``total // count`` stamp leaked up to ``count - 1`` bytes per stage).
    """
    count = max(1, count)
    base, extra = divmod(max(0, int(total)), count)
    return [base + 1 if i < extra else base for i in range(count)]


@dataclass
class StageTimes:
    """Wall-clock components of one executed stage (simulated seconds)."""

    io: float = 0.0
    compute: float = 0.0
    network: float = 0.0
    overhead: float = 0.0
    #: straggler/retry-adjusted per-node seconds the walls were taken from
    #: (``io``/``compute`` are their maxima); recorded on the trace so the
    #: profiler can attribute busy vs idle time per node
    per_node_io: Dict[str, float] = field(default_factory=dict)
    per_node_compute: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.io + self.compute + self.network + self.overhead


@dataclass
class StageOutcome:
    """Result of executing one stage.

    With ``defer_store=True`` the produced dataset is returned in
    ``pending`` instead of being registered on the cluster: the master
    evaluates the branch result in-flight first and only materialises it
    if the choose keeps it (R3: losers are never stored at all).
    """

    output_dataset_id: Optional[str]
    times: StageTimes
    num_tasks: int
    pending: Optional[Dataset] = None
    #: lineage fingerprint of the produced output (None = uncacheable).
    #: Carried on deferred outcomes so the master can admit the output to
    #: the result cache when ``commit_store`` materialises it.
    fingerprint: Optional[str] = None


class StageExecutor:
    """Executes stages against a cluster under an :class:`EngineConfig`."""

    def __init__(self, cluster: Cluster, config: EngineConfig):
        self.cluster = cluster
        self.config = config
        #: node id -> pending transient task-failure attempts, consumed by
        #: the next executed stage (retry-with-backoff, §5)
        self._pending_task_faults: Dict[str, int] = {}
        #: the data plane: who actually runs operator functions over
        #: payloads.  Resolved from ``config.backend`` (a registry name or
        #: a ready instance); instances are caller-owned and survive
        #: :meth:`close`, named backends are created and closed here.
        spec = getattr(config, "backend", "serial")
        self.backend = make_backend(spec)
        self._owns_backend = not isinstance(spec, ExecutionBackend)

    def close(self) -> None:
        """Release backend resources (process pools, shared memory)."""
        if self._owns_backend:
            self.backend.close()

    def inject_task_faults(self, faults: Dict[str, int]) -> None:
        """Schedule transient task failures for the next executed stage."""
        for node_id, attempts in faults.items():
            self._pending_task_faults[node_id] = (
                self._pending_task_faults.get(node_id, 0) + attempts
            )

    # ------------------------------------------------------------- helpers
    def _wall(
        self,
        per_node_io: Dict[str, float],
        per_node_compute: Dict[str, float],
        network: float,
        num_tasks: int,
        per_node_tasks: Optional[Dict[str, int]] = None,
        consume_faults: bool = False,
    ) -> StageTimes:
        """Combine per-node times into stage walls, honouring stragglers.

        Also attributes the (straggler-adjusted) per-node times, the task
        counts, and a per-task latency estimate to the labeled registry;
        the ambient label context supplies stage/branch.

        ``consume_faults`` is True only for real stage-execution walls:
        injected transient task failures are scheduled "for the next
        executed stage" and must not be drained by choose evaluations,
        cache-hit serving or sink finalisation walls in between.
        """
        profile = self.config.stragglers
        if profile is not None:
            per_node_io = apply_stragglers(
                per_node_io, profile, self.config.speculation, self.cluster.metrics
            )
            per_node_compute = apply_stragglers(
                per_node_compute, profile, self.config.speculation, self.cluster.metrics
            )
        if consume_faults and self._pending_task_faults:
            faults, self._pending_task_faults = self._pending_task_faults, {}
            per_node_io = dict(per_node_io)
            per_node_compute = dict(per_node_compute)
            for node_id, attempts in sorted(faults.items()):
                if attempts <= 0:
                    continue
                # each failed attempt redoes the node's full IO + compute
                # share, plus exponential backoff between attempts
                node_io = per_node_io.get(node_id, 0.0)
                node_compute = per_node_compute.get(node_id, 0.0)
                backoff = sum(
                    self.config.retry_backoff * (2 ** i) for i in range(attempts)
                )
                per_node_io[node_id] = node_io * (1 + attempts)
                per_node_compute[node_id] = node_compute * (1 + attempts) + backoff
                self.cluster.obs.counter("task_retries", node=node_id).inc(attempts)
                self.cluster.trace.emit(
                    "task_retried",
                    node=node_id,
                    attempts=attempts,
                    seconds=(node_io + node_compute) * attempts + backoff,
                )
        io = max(per_node_io.values(), default=0.0)
        compute = max(per_node_compute.values(), default=0.0)
        overhead = num_tasks * self.config.task_overhead
        obs = self.cluster.obs
        for node_id, seconds in per_node_io.items():
            obs.counter("time_io", node=node_id).inc(seconds)
            self.cluster.note_busy(node_id, seconds)
        for node_id, seconds in per_node_compute.items():
            obs.counter("time_compute", node=node_id).inc(seconds)
            self.cluster.note_busy(node_id, seconds)
        if network:
            obs.counter("time_network").inc(network)
        attributed = 0
        if per_node_tasks:
            for node_id, count in per_node_tasks.items():
                if count <= 0:
                    continue
                obs.counter("tasks_executed", node=node_id).inc(count)
                attributed += count
                per_task = (
                    per_node_io.get(node_id, 0.0) + per_node_compute.get(node_id, 0.0)
                ) / count
                histogram = obs.histogram("task_seconds", node=node_id)
                for _ in range(count):
                    histogram.observe(per_task)
        if num_tasks > attributed:
            obs.counter("tasks_executed").inc(num_tasks - attributed)
        return StageTimes(
            io=io,
            compute=compute,
            network=network,
            overhead=overhead,
            per_node_io=dict(per_node_io),
            per_node_compute=dict(per_node_compute),
        )

    def _charge_chain(
        self,
        ops: List[Operator],
        nbytes: int,
        node_id: str,
        per_node_compute: Dict[str, float],
    ) -> int:
        """Charge a narrow chain's modelled compute for one partition.

        Control-plane half of the old inline chain loop: accumulates the
        per-operator compute times in the same order as before (float
        accumulation order is part of the byte-identity contract) and
        returns the chain's nominal output bytes.  The data-plane half —
        actually transforming the payloads — runs in :meth:`_apply_chain`.
        """
        cur_bytes = nbytes
        for op in ops:
            cost = op.compute_cost(cur_bytes)
            per_node_compute[node_id] = per_node_compute.get(node_id, 0.0) + (
                self.cluster.cost_model.compute_time(cost)
            )
            cur_bytes = op.output_bytes(cur_bytes)
        return cur_bytes

    def _apply_chain(
        self, stage_id: str, ops: List[Operator], payloads: List[Any]
    ) -> List[Any]:
        """Run the pure payload transform, consuming a prefetch if present."""
        if self.backend.has_prefetched(stage_id):
            prefetched = self.backend.take_prefetched(stage_id)
            if prefetched is not None:
                return prefetched
        if not ops:
            return list(payloads)
        return self.backend.map_chain(ops, payloads)

    # ------------------------------------------------------ result cache
    def _note_miss(self, stage: Stage, fingerprint: Optional[str], reason: str) -> None:
        """Account one consulted-but-executed stage (cache off stays silent)."""
        cache = self.config.cache
        cache.stats.misses += 1
        self.cluster.obs.counter("cache_misses").inc()
        tenant = getattr(cache, "tenant", None)
        if tenant:
            self.cluster.obs.counter("cache_tenant_misses", policy=tenant).inc()
        self.cluster.trace.emit(
            "cache_miss", stage=stage.id, fingerprint=fingerprint, reason=reason
        )

    def _chain_cost_estimate(self, ops: List[Operator], nbytes: int) -> float:
        """Modelled compute seconds of one partition through a narrow chain."""
        cost_model = self.cluster.cost_model
        total, cur = 0.0, nbytes
        for op in ops:
            total += cost_model.compute_time(op.compute_cost(cur))
            cur = op.output_bytes(cur)
        return total

    def _input_read_estimate(self, record) -> float:
        """Modelled serial seconds to read every partition of a dataset."""
        cost_model = self.cluster.cost_model
        total = 0.0
        for key, nbytes in zip(record.partition_keys, record.partition_bytes):
            if self.cluster.key_in_memory(key):
                total += cost_model.mem_read_time(nbytes)
            else:
                total += cost_model.disk_read_time(nbytes)
        return total

    def _recompute_estimate(
        self, stage: Stage, input_ids: List[str]
    ) -> Optional[float]:
        """Modelled serial cost of running the stage cold.

        Drives the profitability gate and the ``saved_seconds`` a hit
        reports.  Serial sums on both sides of the comparison (the store
        cost is identical on both and omitted).  ``None`` when the input
        size cannot be known without executing (a source without
        ``nominal_bytes``), in which case the gate is skipped.
        """
        cost_model = self.cluster.cost_model
        head = stage.head
        if isinstance(head, Source):
            if head.nominal_bytes is None:
                return None
            nparts = self.cluster.num_workers * self.config.partitions_per_worker
            per_part = max(1, head.nominal_bytes // nparts)
            return nparts * (
                cost_model.disk_read_time(per_part)
                + self._chain_cost_estimate(stage.ops[1:], per_part)
            )
        records = [self.cluster.record(i) for i in input_ids]
        total = sum(self._input_read_estimate(r) for r in records)
        if head.narrow:
            for nbytes in records[0].partition_bytes:
                total += self._chain_cost_estimate(stage.ops, nbytes)
            return total
        # wide / join: all-to-all shuffle, global head, pipelined rest
        total_bytes = sum(r.nbytes for r in records)
        workers = max(1, self.cluster.num_workers)
        total += cost_model.network_time(int(total_bytes / workers))
        total += cost_model.compute_time(head.compute_cost(total_bytes))
        per_part = max(1, head.output_bytes(total_bytes) // workers)
        total += workers * self._chain_cost_estimate(stage.ops[1:], per_part)
        return total

    def _hit_read_estimate(self, hit) -> float:
        """Modelled serial cost of serving the hit's bytes by residency."""
        cost_model = self.cluster.cost_model
        if hit.tier == "store":
            return sum(cost_model.disk_read_time(b) for b in hit.partition_bytes)
        total = 0.0
        for (owner, pos), nbytes in zip(hit.locations, hit.partition_bytes):
            record = self.cluster.record(owner)
            if self.cluster.key_in_memory(record.partition_keys[pos]):
                total += cost_model.mem_read_time(nbytes)
            else:
                total += cost_model.disk_read_time(nbytes)
        return total

    def _try_cache(
        self,
        stage: Stage,
        fingerprint: Optional[str],
        input_ids: List[str],
        defer_store: bool,
    ) -> Optional[StageOutcome]:
        """Serve the stage from the result cache, or return ``None`` (miss).

        A hit is served only when the modelled read cost beats the
        modelled recompute cost (``cache.cost_based``): under the paper's
        cost model a disk-resident entry can be slower than recomputing a
        cheap operator, and a cache that slows the job down is worse than
        no cache.
        """
        cache = self.config.cache
        if cache is None or fingerprint is None:
            return None
        hit = cache.lookup(fingerprint, self.cluster)
        if hit is None:
            self._note_miss(stage, fingerprint, "cold")
            return None
        recompute = self._recompute_estimate(stage, input_ids)
        saved_seconds = 0.0
        if recompute is not None:
            read_cost = self._hit_read_estimate(hit)
            if cache.cost_based and read_cost >= recompute:
                self._note_miss(stage, fingerprint, "not-profitable")
                return None
            saved_seconds = max(0.0, recompute - read_cost)
        return self._serve_hit(stage, hit, defer_store, saved_seconds)

    def _serve_hit(
        self, stage: Stage, hit, defer_store: bool, saved_seconds: float
    ) -> StageOutcome:
        """Materialise a cache hit as the stage's output dataset.

        Cluster-tier bytes are read through the normal ``load_partition``
        path (charged by residency, attributed to the live owning dataset
        so R3 keeps holding); store-tier bytes are charged a disk read per
        partition but touch no live slot, so no per-node byte counters
        move (the trace records no access to back them).  Either way the
        output is a fresh first-class dataset: it stores (and evicts)
        exactly like a cold stage's output would.
        """
        cache = self.config.cache
        cluster = self.cluster
        per_node_io: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        out_parts: List[Partition] = []
        store_seconds: Dict[str, float] = {}
        if hit.tier == "cluster":
            owners = sorted({owner for owner, _ in hit.locations})
            with cluster.protect(owners):
                for index, (owner, pos) in enumerate(hit.locations):
                    payload, seconds, node_id = cluster.load_partition(owner, pos)
                    per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                    per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                    out_parts.append(
                        Partition("", index, payload, hit.partition_bytes[index])
                    )
                output = Dataset(
                    out_parts,
                    dataset_id=f"d:{stage.tail.name}",
                    producer=stage.tail.name,
                )
                self._emit_hit(stage, output.id, hit, saved_seconds)
                if not defer_store:
                    store_seconds = cluster.register_dataset(output)
                    cache.admit(hit.fingerprint, output, cluster)
        else:
            cache.stats.store_hits += 1
            for index, payload in enumerate(hit.payloads):
                node = cluster.node_for_partition(index)
                nbytes = hit.partition_bytes[index]
                per_node_io[node.id] = per_node_io.get(node.id, 0.0) + (
                    cluster.cost_model.disk_read_time(nbytes)
                )
                per_node_tasks[node.id] = per_node_tasks.get(node.id, 0) + 1
                # copy on serve: the hit's payloads belong to the cache
                # blob — aliasing them into a live dataset would let any
                # downstream in-place mutation corrupt every later hit
                payload = pickle.loads(
                    pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                )
                out_parts.append(Partition("", index, payload, nbytes))
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            self._emit_hit(stage, output.id, hit, saved_seconds)
            if not defer_store:
                store_seconds = cluster.register_dataset(output)
                cache.admit(hit.fingerprint, output, cluster)
        num_tasks = hit.num_partitions
        if defer_store:
            times = self._wall(per_node_io, {}, 0.0, num_tasks, per_node_tasks)
            return StageOutcome(
                output.id,
                times,
                num_tasks,
                pending=output,
                fingerprint=hit.fingerprint,
            )
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(per_node_io, {}, 0.0, num_tasks, per_node_tasks)
        return StageOutcome(output.id, times, num_tasks, fingerprint=hit.fingerprint)

    def _emit_hit(self, stage: Stage, dataset_id: str, hit, saved_seconds: float) -> None:
        cache = self.config.cache
        cache.stats.hits += 1
        cache.stats.bytes_saved += hit.total_bytes
        cache.stats.compute_seconds_saved += saved_seconds
        obs = self.cluster.obs
        labels = dict(dataset=dataset_id, policy=hit.tier)
        obs.counter("cache_hits", **labels).inc()
        obs.counter("cache_bytes_saved", **labels).inc(hit.total_bytes)
        obs.counter("cache_compute_seconds_saved", **labels).inc(saved_seconds)
        # tenant-labelled accounting (shared cross-tenant stores only; these
        # counters are additive — not part of the bridge's replay views)
        tenant = getattr(cache, "tenant", None)
        if tenant:
            obs.counter("cache_tenant_hits", policy=tenant).inc()
            owner = getattr(hit, "owner_tenant", None)
            if owner and owner != tenant:
                cache.stats.cross_tenant_hits += 1
                obs.counter(
                    "cache_cross_tenant_hits", policy=f"{owner}->{tenant}"
                ).inc()
        self.cluster.trace.emit(
            "cache_hit",
            stage=stage.id,
            dataset=dataset_id,
            fingerprint=hit.fingerprint,
            tier=hit.tier,
            nbytes=hit.total_bytes,
            saved_seconds=saved_seconds,
        )

    def _maybe_admit(self, fingerprint: Optional[str], output: Dataset) -> None:
        """Remember a freshly registered stage output in the result cache."""
        cache = self.config.cache
        if cache is not None and fingerprint is not None:
            cache.admit(fingerprint, output, self.cluster)

    # ------------------------------------------------------------- execute
    def execute(
        self,
        stage: Stage,
        input_dataset_id: Optional[str],
        defer_store: bool = False,
        fingerprint: Optional[str] = None,
    ) -> StageOutcome:
        """Run one non-choose stage; returns its output dataset and times."""
        head = stage.head
        if isinstance(head, Source):
            cached = self._try_cache(stage, fingerprint, [], defer_store)
            if cached is not None:
                self.backend.drop_prefetched(stage.id)
                return cached
            return self._execute_source_stage(stage, fingerprint)
        if input_dataset_id is None:
            raise SchedulingError(f"stage {stage.id} has no input dataset")
        cached = self._try_cache(stage, fingerprint, [input_dataset_id], defer_store)
        if cached is not None:
            self.backend.drop_prefetched(stage.id)
            return cached
        if head.narrow:
            return self._execute_narrow_stage(
                stage, input_dataset_id, defer_store, fingerprint
            )
        return self._execute_wide_stage(
            stage, input_dataset_id, defer_store, fingerprint
        )

    def execute_join(
        self,
        stage: Stage,
        left_id: str,
        right_id: str,
        defer_store: bool = False,
        fingerprint: Optional[str] = None,
    ) -> StageOutcome:
        """Run a stage headed by a two-input :class:`Join` operator.

        Both operands are gathered (each partition read where it lives,
        bytes crossing the network once), the join function runs over the
        concatenated payloads, and the result is re-partitioned and fed
        through the rest of the stage's narrow chain.
        """
        cached = self._try_cache(stage, fingerprint, [left_id, right_id], defer_store)
        if cached is not None:
            return cached
        head, rest = stage.ops[0], stage.ops[1:]
        assert isinstance(head, Join)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        operands = []
        total_bytes = 0
        with self.cluster.protect([left_id, right_id]):
            for dataset_id in (left_id, right_id):
                record = self.cluster.record(dataset_id)
                payloads = []
                for index in range(record.num_partitions):
                    payload, seconds, node_id = self.cluster.load_partition(
                        dataset_id, index
                    )
                    per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                    per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                    payloads.append(payload)
                total_bytes += record.nbytes
                operands.append(payloads)
            share = total_bytes / max(1, self.cluster.num_workers)
            network = self.cluster.cost_model.network_time(int(share))
            per_worker_compute = self.cluster.cost_model.compute_time(
                head.compute_cost(total_bytes) / self.cluster.num_workers
            )
            for node in self.cluster.alive_nodes:
                per_node_compute[node.id] = (
                    per_node_compute.get(node.id, 0.0) + per_worker_compute
                )
            from ..core.datasets import concat_payloads

            left_payload = concat_payloads(operands[0])
            right_payload = concat_payloads(operands[1])
            joined = self.backend.run_join(head, left_payload, right_payload)
            out_payloads = split_payload(joined, self.cluster.num_workers)
            out_total = head.output_bytes(total_bytes)
            part_bytes = _split_bytes(out_total, len(out_payloads))
            out_bytes_list = [
                self._charge_chain(
                    rest,
                    part_bytes[index],
                    self.cluster.node_for_partition(index).id,
                    per_node_compute,
                )
                for index in range(len(out_payloads))
            ]
            out_payloads = self._apply_chain(stage.id, rest, out_payloads)
            out_parts: List[Partition] = [
                Partition("", index, payload, out_bytes_list[index])
                for index, payload in enumerate(out_payloads)
            ]
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            if not defer_store:
                store_seconds = self.cluster.register_dataset(output)
        num_tasks = sum(len(p) for p in operands)
        if defer_store:
            times = self._wall(
                per_node_io,
                per_node_compute,
                network,
                num_tasks,
                per_node_tasks,
                consume_faults=True,
            )
            return StageOutcome(
                output.id, times, num_tasks, pending=output, fingerprint=fingerprint
            )
        self._maybe_admit(fingerprint, output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io,
            per_node_compute,
            network,
            num_tasks,
            per_node_tasks,
            consume_faults=True,
        )
        return StageOutcome(output.id, times, num_tasks, fingerprint=fingerprint)

    def commit_store(
        self, dataset: Dataset, fingerprint: Optional[str] = None
    ) -> StageTimes:
        """Materialise a deferred stage output (charge the store)."""
        store_seconds = self.cluster.register_dataset(dataset)
        self._maybe_admit(fingerprint, dataset)
        io = max(store_seconds.values(), default=0.0)
        for node_id, seconds in store_seconds.items():
            self.cluster.obs.counter("time_io", node=node_id).inc(seconds)
            self.cluster.note_busy(node_id, seconds)
        return StageTimes(io=io, per_node_io=dict(store_seconds))

    def commit_restore(
        self,
        dataset: Dataset,
        into: str,
        keys: Optional[List[Tuple[str, int]]] = None,
    ) -> StageTimes:
        """Store a re-executed stage's output back into an existing record.

        Recovery counterpart of :meth:`commit_store`: the dataset id is
        already registered — only the (missing) partitions in ``keys`` are
        written back into their original slots, so surviving partitions
        keep their residency and the record's identity is preserved.
        """
        store_seconds = self.cluster.restore_partitions(dataset, into=into, keys=keys)
        io = max(store_seconds.values(), default=0.0)
        for node_id, seconds in store_seconds.items():
            self.cluster.obs.counter("time_io", node=node_id).inc(seconds)
            self.cluster.note_busy(node_id, seconds)
        return StageTimes(io=io, per_node_io=dict(store_seconds))

    def _execute_source_stage(
        self, stage: Stage, fingerprint: Optional[str] = None
    ) -> StageOutcome:
        source = stage.head
        assert isinstance(source, Source)
        nparts = self.cluster.num_workers * self.config.partitions_per_worker
        raw = source.generate(nparts, producer=stage.tail.name)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        # Reading the job input from distributed storage is a disk read.
        chain = stage.ops[1:]
        in_payloads: List[Any] = []
        out_bytes_list: List[int] = []
        for partition in raw.partitions:
            node = self.cluster.node_for_partition(partition.index)
            self.cluster.obs.counter(
                "bytes_read_disk", node=node.id, dataset=raw.id
            ).inc(partition.nominal_bytes)
            self.cluster.trace.emit(
                "source_read",
                dataset=raw.id,
                index=partition.index,
                node=node.id,
                nbytes=partition.nominal_bytes,
            )
            per_node_io[node.id] = per_node_io.get(node.id, 0.0) + (
                self.cluster.cost_model.disk_read_time(partition.nominal_bytes)
            )
            per_node_tasks[node.id] = per_node_tasks.get(node.id, 0) + 1
            out_bytes_list.append(
                self._charge_chain(
                    chain, partition.nominal_bytes, node.id, per_node_compute
                )
            )
            in_payloads.append(partition.data)
        out_payloads = self._apply_chain(stage.id, chain, in_payloads)
        out_parts: List[Partition] = [
            Partition(raw.id, partition.index, out_payloads[i], out_bytes_list[i])
            for i, partition in enumerate(raw.partitions)
        ]
        output = Dataset(out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name)
        store_seconds = self.cluster.register_dataset(output)
        self._maybe_admit(fingerprint, output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io,
            per_node_compute,
            0.0,
            len(out_parts),
            per_node_tasks,
            consume_faults=True,
        )
        return StageOutcome(output.id, times, len(out_parts), fingerprint=fingerprint)

    def _execute_narrow_stage(
        self,
        stage: Stage,
        input_dataset_id: str,
        defer_store: bool = False,
        fingerprint: Optional[str] = None,
    ) -> StageOutcome:
        record = self.cluster.record(input_dataset_id)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        with self.cluster.protect([input_dataset_id]):
            in_payloads: List[Any] = []
            out_bytes_list: List[int] = []
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(
                    input_dataset_id, index
                )
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                nbytes = record.partition_bytes[index]
                out_bytes_list.append(
                    self._charge_chain(stage.ops, nbytes, node_id, per_node_compute)
                )
                in_payloads.append(payload)
            out_payloads = self._apply_chain(stage.id, stage.ops, in_payloads)
            out_parts: List[Partition] = [
                Partition("", index, payload, out_bytes_list[index])
                for index, payload in enumerate(out_payloads)
            ]
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            if not defer_store:
                store_seconds = self.cluster.register_dataset(output)
        if defer_store:
            times = self._wall(
                per_node_io,
                per_node_compute,
                0.0,
                len(out_parts),
                per_node_tasks,
                consume_faults=True,
            )
            return StageOutcome(
                output.id,
                times,
                len(out_parts),
                pending=output,
                fingerprint=fingerprint,
            )
        self._maybe_admit(fingerprint, output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io,
            per_node_compute,
            0.0,
            len(out_parts),
            per_node_tasks,
            consume_faults=True,
        )
        return StageOutcome(output.id, times, len(out_parts), fingerprint=fingerprint)

    def _execute_wide_stage(
        self,
        stage: Stage,
        input_dataset_id: str,
        defer_store: bool = False,
        fingerprint: Optional[str] = None,
    ) -> StageOutcome:
        """Wide head: gather all partitions (shuffle), then pipeline the rest."""
        record = self.cluster.record(input_dataset_id)
        head, rest = stage.ops[0], stage.ops[1:]
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        payloads: List[Any] = []
        total_bytes = 0
        with self.cluster.protect([input_dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(
                    input_dataset_id, index
                )
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                payloads.append(payload)
                total_bytes += record.partition_bytes[index]
            # all-to-all shuffle: every byte crosses the network once; each
            # node sends its share in parallel
            share = total_bytes / max(1, self.cluster.num_workers)
            network = self.cluster.cost_model.network_time(int(share))
            head_cost = head.compute_cost(total_bytes)
            # global computation is spread across the workers
            per_worker_compute = self.cluster.cost_model.compute_time(
                head_cost / self.cluster.num_workers
            )
            for node in self.cluster.alive_nodes:
                per_node_compute[node.id] = (
                    per_node_compute.get(node.id, 0.0) + per_worker_compute
                )
            # data plane: a prefetched wide stage already ran head + rest
            # off-turn, so only the (identical) charges remain to be made
            final_payloads: Optional[List[Any]] = None
            if self.backend.has_prefetched(stage.id):
                final_payloads = self.backend.take_prefetched(stage.id)
            if final_payloads is None:
                mid_payloads = self.backend.run_global(head, payloads)
                nout = len(mid_payloads)
            else:
                nout = len(final_payloads)
            out_total = head.output_bytes(total_bytes)
            part_bytes = _split_bytes(out_total, nout)
            out_bytes_list = [
                self._charge_chain(
                    rest,
                    part_bytes[index],
                    self.cluster.node_for_partition(index).id,
                    per_node_compute,
                )
                for index in range(nout)
            ]
            if final_payloads is None:
                final_payloads = (
                    self.backend.map_chain(rest, mid_payloads)
                    if rest
                    else list(mid_payloads)
                )
            out_parts: List[Partition] = [
                Partition("", index, payload, out_bytes_list[index])
                for index, payload in enumerate(final_payloads)
            ]
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            if not defer_store:
                store_seconds = self.cluster.register_dataset(output)
        if defer_store:
            times = self._wall(
                per_node_io,
                per_node_compute,
                network,
                len(payloads),
                per_node_tasks,
                consume_faults=True,
            )
            return StageOutcome(
                output.id,
                times,
                len(payloads),
                pending=output,
                fingerprint=fingerprint,
            )
        self._maybe_admit(fingerprint, output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io,
            per_node_compute,
            network,
            len(payloads),
            per_node_tasks,
            consume_faults=True,
        )
        return StageOutcome(output.id, times, len(payloads), fingerprint=fingerprint)

    # ------------------------------------------------------------ evaluate
    def evaluate_pipelined(self, evaluator, dataset: Dataset) -> Tuple[float, StageTimes]:
        """Evaluate a branch result as part of the stage that produced it.

        §4.2: "the evaluator function is executed by worker nodes and
        applied directly to the result datasets of each branch" — when the
        choose runs incrementally, the evaluator pipelines with the tail
        stage, so the freshly produced partitions are scored without being
        re-read (they may not even be stored yet).  Only the evaluator's
        compute cost is charged.
        """
        per_node_compute: Dict[str, float] = {}
        for partition in dataset.partitions:
            node = self.cluster.node_for_partition(partition.index)
            cost = evaluator.cost_factor * partition.nominal_bytes
            per_node_compute[node.id] = per_node_compute.get(node.id, 0.0) + (
                self.cluster.cost_model.compute_time(cost)
            )
        score = evaluator.score(dataset)
        self.cluster.obs.counter("choose_evaluations", dataset=dataset.id).inc()
        self.cluster.trace.emit(
            "choose_evaluation",
            evaluator=evaluator.name,
            dataset=dataset.id,
            pipelined=True,
        )
        times = self._wall({}, per_node_compute, 0.0, 0)
        self.cluster.obs.histogram(
            "choose_evaluation_seconds", dataset=dataset.id
        ).observe(times.total)
        return score, times

    def evaluate_branch(self, evaluator, dataset_id: str) -> Tuple[float, StageTimes]:
        """Run a choose evaluator over a branch result (worker side).

        Reads the branch dataset (normal hit/miss accounting) and charges
        the evaluator's compute cost on each node.  With the
        ``evaluator_on_master`` ablation, the branch result additionally
        crosses the network to the master and the evaluation runs serially
        there.
        """
        record = self.cluster.record(dataset_id)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        parts: List[Partition] = []
        with self.cluster.protect([dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(dataset_id, index)
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                nbytes = record.partition_bytes[index]
                parts.append(Partition(dataset_id, index, payload, nbytes))
                cost = evaluator.cost_factor * nbytes
                per_node_compute[node_id] = per_node_compute.get(node_id, 0.0) + (
                    self.cluster.cost_model.compute_time(cost)
                )
        dataset = Dataset(parts, dataset_id=dataset_id, producer=record.producer)
        score = evaluator.score(dataset)
        network = 0.0
        if self.config.evaluator_on_master:
            # ship the branch result to the master and evaluate serially
            network = self.cluster.cost_model.network_time(record.nbytes)
            serial = sum(per_node_compute.values())
            per_node_compute = {"master": serial}
            per_node_tasks = {"master": record.num_partitions}
        self.cluster.obs.counter("choose_evaluations", dataset=dataset_id).inc()
        self.cluster.trace.emit(
            "choose_evaluation",
            evaluator=evaluator.name,
            dataset=dataset_id,
            pipelined=False,
        )
        times = self._wall(
            per_node_io, per_node_compute, network, record.num_partitions, per_node_tasks
        )
        self.cluster.obs.histogram(
            "choose_evaluation_seconds", dataset=dataset_id
        ).observe(times.total)
        return score, times

    def finalize_sink(self, sink: Sink, dataset_id: str) -> Tuple[Any, StageTimes]:
        """Collect a dataset at the sink and run the sink function."""
        record = self.cluster.record(dataset_id)
        per_node_io: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        parts: List[Partition] = []
        with self.cluster.protect([dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(dataset_id, index)
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                parts.append(Partition(dataset_id, index, payload, record.partition_bytes[index]))
        dataset = Dataset(parts, dataset_id=dataset_id, producer=record.producer)
        value = sink.finalize(dataset)
        times = self._wall(per_node_io, {}, 0.0, record.num_partitions, per_node_tasks)
        return value, times
