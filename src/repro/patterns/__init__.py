"""Common MDF patterns (§3.2 of the paper).

* :mod:`crossval` — k-fold cross validation as an explore over data
  splits, with the choose aggregating fold scores;
* :mod:`iterative` — fixpoint computation with a choose *inside* the
  unrolled iteration, terminating non-converging branches early.
"""

from .crossval import cross_validation_mdf, fold_splits
from .iterative import iterative_explore_mdf

__all__ = ["cross_validation_mdf", "fold_splits", "iterative_explore_mdf"]
