"""Iterative (fixpoint) computation inside an MDF (§3.2).

The paper: dataflow systems unroll iterations (App. A); a naive MDF would
run every branch's fixpoint to completion before choosing.  "To avoid
full execution of branches, however, a choose operator is incorporated in
the iteration itself.  It then terminates the branch early if, e.g. the
computation is not converging."

:func:`iterative_explore_mdf` builds that pattern: each explored
configuration unrolls into ``max_rounds`` step operators.  The iteration
state carries a liveness flag — once a branch converges (or is declared
divergent) the remaining unrolled steps short-circuit, so no further real
computation happens, and the branch's evaluator score reflects where it
stopped.  Combined with a non-exhaustive selection (e.g. "first k
converged"), the scope's choose terminates the remaining branches without
ever executing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..core.builder import MDFBuilder, Pipe
from ..core.evaluators import CallableEvaluator
from ..core.mdf import MDF
from ..core.operators import Source
from ..core.selection import SelectionFunction, TopK

StepFn = Callable[[Any, Any], Any]  # (state, config) -> next state
PredFn = Callable[[Any, Any], bool]  # (state, config) -> bool


@dataclass
class IterationState:
    """The payload threaded through the unrolled iteration of one branch."""

    value: Any
    rounds: int = 0
    converged: bool = False
    diverged: bool = False

    @property
    def alive(self) -> bool:
        return not (self.converged or self.diverged)


def iterative_explore_mdf(
    initial: Any,
    configs: Sequence[Any],
    step_fn: StepFn,
    converged_fn: PredFn,
    diverged_fn: Optional[PredFn] = None,
    max_rounds: int = 10,
    selection: Optional[SelectionFunction] = None,
    nominal_bytes: Optional[int] = None,
    name: str = "iterative-explore",
) -> MDF:
    """Explore fixpoint configurations with in-iteration early termination.

    Each branch starts from ``initial`` and applies ``step_fn(state,
    config)`` up to ``max_rounds`` times, stopping as soon as
    ``converged_fn`` (success) or ``diverged_fn`` (failure) fires.  The
    choose's evaluator scores a branch by how quickly it converged
    (``max_rounds − rounds`` for converged branches, a large negative
    penalty for diverged or unconverged ones); the default selection keeps
    the fastest-converging configuration.

    The final payload is a one-element list with the winning
    :class:`IterationState`.
    """
    selection = selection or TopK(1)
    diverged_fn = diverged_fn or (lambda state, config: False)

    builder = MDFBuilder(name)
    src = builder.read(
        Source.from_data([initial], name="read-initial", nominal_bytes=nominal_bytes)
    )

    def make_step(config: Any, round_index: int, label: str):
        def step(payload):
            states = [
                s if isinstance(s, IterationState) else IterationState(s)
                for s in payload
            ]
            out: List[IterationState] = []
            for state in states:
                if not state.alive:
                    out.append(state)  # short-circuit: no more computation
                    continue
                value = step_fn(state.value, config)
                nxt = IterationState(value, rounds=state.rounds + 1)
                if converged_fn(value, config):
                    nxt.converged = True
                elif diverged_fn(value, config):
                    nxt.diverged = True
                out.append(nxt)
            return out

        step.__name__ = label
        return step

    def branch(pipe: Pipe, p) -> Pipe:
        config = p["config"]
        for round_index in range(max_rounds):
            pipe = pipe.transform(
                make_step(config, round_index, f"step-{p['_i']}-{round_index}"),
                name=f"step-{p['_i']}-r{round_index}",
                cost_factor=1.0,
            )
        return pipe

    def score(payload) -> float:
        states = [s for s in payload if isinstance(s, IterationState)]
        if not states:
            return float("-inf")
        state = states[0]
        if state.diverged:
            return -1e9
        if not state.converged:
            return -1e6
        return float(max_rounds - state.rounds)

    result = src.explore(
        {"_i": list(range(len(configs)))},
        lambda pipe, p: branch(pipe, {"config": configs[p["_i"]], "_i": p["_i"]}),
        name="explore-configs",
    ).choose(
        CallableEvaluator(score, name="convergence-speed"),
        selection,
        name="choose-config",
    )
    result.write(name="result")
    return builder.build()
