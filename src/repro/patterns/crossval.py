"""Cross validation as a meta-dataflow (§3.2).

The paper: "an explore operator splits the input data, a trainer trains
the ML model, and a choose operator selects the highest quality result.
The trainer and choose operators execute multiple rounds of validation."

Here the explore's parameter grid is the *fold index*: each branch trains
on k−1 folds and validates on the held-out fold.  The choose's evaluator
is the fold's validation score; selection is configurable — ``TopK(1)``
picks the best fold's model (the paper's "highest quality result"), while
``Threshold(-inf)``-style selections can keep all folds for ensembling.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.builder import MDFBuilder, Pipe
from ..core.evaluators import CallableEvaluator
from ..core.mdf import MDF
from ..core.operators import Source
from ..core.selection import SelectionFunction, TopK

TrainFn = Callable[[Any, Any], Any]  # (train_payload, val_payload) -> model
ScoreFn = Callable[[Any], float]  # model -> validation score


def fold_splits(n_items: int, k: int) -> List[Tuple[List[int], List[int]]]:
    """Contiguous k-fold index splits: ``[(train_idx, val_idx), ...]``."""
    if k < 2:
        raise ValueError("cross validation needs k >= 2 folds")
    if n_items < k:
        raise ValueError("need at least one item per fold")
    base, extra = divmod(n_items, k)
    folds: List[List[int]] = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        folds.append(list(range(start, start + size)))
        start += size
    splits = []
    for i in range(k):
        val = folds[i]
        train = [idx for j, fold in enumerate(folds) if j != i for idx in fold]
        splits.append((train, val))
    return splits


def cross_validation_mdf(
    items: Sequence[Any],
    train_fn: TrainFn,
    score_fn: ScoreFn,
    k: int = 5,
    selection: Optional[SelectionFunction] = None,
    nominal_bytes: Optional[int] = None,
    name: str = "cross-validation",
) -> MDF:
    """Build a k-fold cross-validation MDF over ``items``.

    Each branch trains via ``train_fn(train_items, val_items)`` and is
    scored by ``score_fn(model)``; the default selection keeps the single
    best fold's model.  The returned MDF's sink output is a one-element
    list holding the selected model(s).
    """
    selection = selection or TopK(1)
    splits = fold_splits(len(items), k)
    items = list(items)

    builder = MDFBuilder(name)
    src = builder.read(
        Source.from_data(items, name="read-folds", nominal_bytes=nominal_bytes)
    )

    def fold_branch(pipe: Pipe, p) -> Pipe:
        fold = p["fold"]
        train_idx, val_idx = splits[fold]

        def train(payload, train_idx=train_idx, val_idx=val_idx):
            # each partition holds a slice of the items; training uses the
            # global indices, so gather via an aggregate-style operator
            train_items = [items[i] for i in train_idx]
            val_items = [items[i] for i in val_idx]
            return [train_fn(train_items, val_items)]

        return pipe.aggregate(train, name=f"train-fold-{fold}", selectivity=0.01)

    result = src.explore(
        {"fold": list(range(k))}, fold_branch, name="explore-folds"
    ).choose(
        CallableEvaluator(
            lambda payload: float(score_fn(payload[0])) if payload else float("-inf"),
            name="fold-score",
        ),
        selection,
        name="choose-fold",
    )
    result.write(name="model")
    return builder.build()
