"""Baseline execution strategies the paper compares MDFs against (§6.1)."""

from .parallel import run_parallel
from .results import BaselineResult, pick_best
from .sequential import run_sequential
from .sparklike import (
    cache_points,
    seep_bfs,
    seep_mdf,
    spark_cache,
    spark_sequential,
    spark_yarn,
)

__all__ = [
    "BaselineResult",
    "cache_points",
    "pick_best",
    "run_parallel",
    "run_sequential",
    "seep_bfs",
    "seep_mdf",
    "spark_cache",
    "spark_sequential",
    "spark_yarn",
]
