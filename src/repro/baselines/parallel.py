"""k-parallel baseline (§6.1): k jobs co-scheduled on the shared cluster.

The paper's ``4-parallel`` / ``8-parallel`` deployments submit k jobs at a
time; the jobs share the cluster, splitting each worker's memory equally
(``mem/k`` per job).  Co-scheduled jobs overlap their computation with each
other's I/O, which is why parallel execution beats sequential until memory
pressure claws the benefit back (Fig. 6's discussion).

The overlap model: within one wave of k jobs, the aggregate compute demand
and the aggregate IO demand stream through the shared CPUs and the shared
storage concurrently, so the wave finishes after
``max(Σ compute_walls, Σ io_walls) + Σ overheads``.  Each job's walls are
measured by running it on a cluster clone whose workers own ``mem/k``.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..cluster.cluster import Cluster
from ..cluster.memory import MemoryPolicy, make_policy
from ..cluster.metrics import Metrics
from ..core.mdf import MDF
from ..engine.job import EngineConfig, JobResult
from ..engine.runner import run_mdf
from .results import BaselineResult


def _wave_time(results: List[JobResult], k: int) -> float:
    """Completion time of one co-scheduled wave (compute/IO overlap).

    The dominant resource gates the wave (``max(Σcompute, Σio)``); the
    non-dominant resource cannot be hidden at the wave's edges (the first
    job's leading IO, the last job's trailing compute), contributing its
    per-job share ``min(Σcompute, Σio)/k``.  Higher parallelism therefore
    overlaps more — until per-job memory shrinks and IO inflates."""
    compute = sum(r.wall_compute for r in results)
    io = sum(r.wall_io + r.wall_network for r in results)
    overhead = sum(
        max(0.0, r.completion_time - r.wall_compute - r.wall_io - r.wall_network)
        for r in results
    )
    return max(compute, io) + min(compute, io) / max(1, k) + overhead


def run_parallel(
    jobs: List[MDF],
    cluster: Cluster,
    k: int = 4,
    scheduler: str = "bfs",
    memory: Union[str, MemoryPolicy] = "lru",
    config: Optional[EngineConfig] = None,
    name: Optional[str] = None,
    job_overhead: float = 1.0,
) -> BaselineResult:
    """Run the job family in waves of ``k`` co-scheduled jobs.

    ``cluster`` provides the topology and cost model; each job in a wave
    executes against a clone whose workers have ``mem/k`` memory.  Each
    wave pays one ``job_overhead`` (containers of a wave start
    concurrently)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    name = name or f"{k}-parallel"
    total = 0.0
    merged: Optional[Metrics] = None
    results: List[JobResult] = []
    per_job_mem = max(1, cluster.nodes[0].mem_capacity // k)
    for start in range(0, len(jobs), k):
        wave = jobs[start : start + k]
        wave_results = []
        for mdf in wave:
            clone = Cluster(
                num_workers=cluster.num_workers,
                mem_per_worker=per_job_mem,
                cost_model=cluster.cost_model,
                policy=make_policy(memory) if isinstance(memory, str) else memory,
            )
            result = run_mdf(mdf, clone, scheduler=scheduler, memory=None, config=config)
            wave_results.append(result)
            merged = result.metrics if merged is None else merged.merge(result.metrics)
        total += _wave_time(wave_results, k) + job_overhead
        results.extend(wave_results)
    if merged is None:
        merged = Metrics()
    return BaselineResult(name, total, merged, results)
