"""Sequential baseline (§6.1): one job per configuration, back to back.

Each job gets the full cluster but starts cold: caches do not survive
across jobs, so shared pre-processing re-executes and the input re-loads
from disk every time.  This is the paper's ``sequential`` baseline and the
behaviour of submitting independent dataflow jobs to Spark."""

from __future__ import annotations

from typing import List, Optional, Union

from ..cluster.cluster import Cluster
from ..cluster.memory import MemoryPolicy
from ..core.mdf import MDF
from ..engine.job import EngineConfig
from ..engine.runner import run_mdf
from .results import BaselineResult


def run_sequential(
    jobs: List[MDF],
    cluster: Cluster,
    scheduler: str = "bfs",
    memory: Union[str, MemoryPolicy] = "lru",
    config: Optional[EngineConfig] = None,
    name: str = "sequential",
    job_overhead: float = 1.0,
) -> BaselineResult:
    """Run every concrete job in sequence on a cold cluster.

    ``job_overhead`` is the per-job submission cost (scheduler round-trip,
    container/JVM spin-up) that a cluster pays for every independently
    submitted dataflow job — the fixed cost an MDF amortises into a single
    submission."""
    total = 0.0
    merged = None
    results = []
    for mdf in jobs:
        result = run_mdf(mdf, cluster, scheduler=scheduler, memory=memory, config=config)
        total += result.completion_time + job_overhead
        merged = result.metrics if merged is None else merged.merge(result.metrics)
        results.append(result)
    if merged is None:
        from ..cluster.metrics import Metrics

        merged = Metrics()
    return BaselineResult(name, total, merged, results)
