"""Result containers for baseline executions (§6.1 comparison approaches)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List

from ..cluster.metrics import Metrics
from ..engine.job import JobResult


@dataclass
class BaselineResult:
    """Aggregate outcome of running a family of jobs as a baseline would.

    ``completion_time`` is the end-to-end simulated time for the whole
    exploratory workflow (all submitted jobs); ``jobs`` holds the
    individual job results in submission order.
    """

    name: str
    completion_time: float
    metrics: Metrics
    jobs: List[JobResult] = field(default_factory=list)

    @property
    def memory_hit_ratio(self) -> float:
        return self.metrics.memory_hit_ratio

    def outputs(self) -> List[Any]:
        return [job.output for job in self.jobs]


def pick_best(
    result: BaselineResult,
    score_fn: Callable[[Any], float],
    maximize: bool = True,
) -> Any:
    """The manual post-hoc comparison a user performs across separate jobs.

    Baselines execute every configuration to completion; only afterwards can
    the user score each job's output and pick the winner — exactly the
    workflow §1 describes (and the inefficiency MDFs remove).
    """
    outputs = [o for o in result.outputs() if o is not None]
    if not outputs:
        return None
    key = score_fn
    return max(outputs, key=key) if maximize else min(outputs, key=key)
