"""Spark-like baselines for the Fig. 9 comparison (§6.1).

The paper compares SEEP's MDF execution against four alternatives; each is
an emulation of the corresponding policy mix on the shared simulated
substrate (see DESIGN.md §2 for the substitution argument):

* **Spark (sequential)** — separate jobs, breadth-first stages, LRU
  eviction, cold caches per job: no reuse, no parallel overlap;
* **Spark (YARN)** — the same jobs co-scheduled k at a time by a
  YARN-style resource manager (memory split per job, compute/IO overlap);
* **Spark (cache)** — a single judiciously designed job over the merged
  dataflow with ``cache()`` on the shared pre-explore datasets (pinned in
  memory), still BFS + LRU, no incremental choose, no pruning (Spark has
  no dynamic topology);
* **SEEP (BFS)** — the full MDF job with AMM and incremental choose, but
  breadth-first stage order instead of branch-aware scheduling (isolates
  the BAS contribution);
* **SEEP (MDF)** — everything on: BAS + AMM + incremental + pruning.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster.cluster import Cluster
from ..core.explore import ExploreOperator
from ..core.mdf import MDF
from ..engine.job import EngineConfig, JobResult
from ..engine.runner import run_mdf
from .parallel import run_parallel
from .results import BaselineResult
from .sequential import run_sequential


def cache_points(mdf: MDF) -> frozenset:
    """The datasets a careful Spark user would ``cache()``.

    These are the outputs feeding explore operators — the datasets read
    once per branch.  The paper notes they "empirically determine which
    datasets to retain — when instructing Spark to cache all datasets,
    execution is slower than without caching"; the empirically good subset
    is the inputs of the *outermost* explores (the most re-read data for
    the least pinned memory), so only those are pinned.
    """
    producers = set()
    for scope in mdf.scopes.values():
        if mdf.nesting_depth(scope.explore) != 0:
            continue
        for pred in mdf.pre(scope.explore):
            if not isinstance(pred, ExploreOperator):
                producers.add(pred.name)
    return frozenset(producers)


def spark_sequential(jobs: List[MDF], cluster: Cluster) -> BaselineResult:
    """Spark (sequential): independent jobs, BFS + LRU, cold caches."""
    return run_sequential(jobs, cluster, scheduler="bfs", memory="lru", name="spark-sequential")


def spark_yarn(jobs: List[MDF], cluster: Cluster, k: int = 4) -> BaselineResult:
    """Spark (YARN): k co-scheduled jobs sharing the cluster."""
    return run_parallel(
        jobs, cluster, k=k, scheduler="bfs", memory="lru", name="spark-yarn"
    )


def spark_cache(mdf: MDF, cluster: Cluster) -> JobResult:
    """Spark (cache): one merged driver program with explicit ``cache()``.

    A careful Spark user writes one driver program that caches the shared
    pre-explore datasets and triggers one action per branch.  Actions run
    one after another (depth-first per branch), the driver scores each
    branch result as it returns and keeps only the winner so far
    (incremental evaluation in driver code), and non-cached intermediates
    are released between actions.  What Spark *cannot* do is prune
    not-yet-submitted branches from inside the job (static topology) or
    evict anticipatorily — it stays on LRU.
    """
    config = EngineConfig(
        incremental_choose=True,
        pruning=False,
        pin_producers=cache_points(mdf),
    )
    return run_mdf(mdf, cluster, scheduler="bas", memory="lru", config=config)


def seep_bfs(mdf: MDF, cluster: Cluster, config: Optional[EngineConfig] = None) -> JobResult:
    """SEEP (BFS): the MDF job with AMM but breadth-first scheduling."""
    config = config or EngineConfig()
    return run_mdf(mdf, cluster, scheduler="bfs", memory="amm", config=config)


def seep_mdf(mdf: MDF, cluster: Cluster, config: Optional[EngineConfig] = None) -> JobResult:
    """SEEP (MDF): branch-aware scheduling + AMM + incremental + pruning."""
    config = config or EngineConfig()
    return run_mdf(mdf, cluster, scheduler="bas", memory="amm", config=config)
