"""Worker-side job execution (runs inside a pool process).

:func:`run_job` is the single function the service dispatches to its
fork-context process pool.  It rebuilds the workload from the lab zoo by
name (closures never cross the pipe), attaches a per-job
:class:`~repro.cache.ResultCache` over the **shared**
:class:`~repro.cache.SharedCacheStore` directory, streams the live trace
to the job's NDJSON file through the PR7
:class:`~repro.live.stream.StreamWriter`, runs ``run_mdf``, and returns
a plain-dict summary (picklable, JSON-serialisable) to the parent.

Two invariants the service asserts on top:

* **Per-job byte-identity** — a job's sink outputs must be byte-identical
  to the same workload run solo (:func:`outputs_digest` over the pickled
  outputs); cache hits change *when* bytes are produced, never *what*.
* **Validator cleanliness** — with ``spec.validate`` the seven paper
  invariants run over the recorded trace and the violation count is
  reported (the load generator and CI require zero).
"""

from __future__ import annotations

import hashlib
import pickle
import time
import traceback
from typing import Any, Dict

from ..cache import ResultCache, SharedCacheStore
from ..engine.runner import run_mdf
from ..trace.validate import validate_trace
from .jobs import JobSpec

__all__ = ["outputs_digest", "run_job"]


def outputs_digest(outputs: Dict[str, Any]) -> str:
    """Canonical sha256 of a job's sink outputs (byte-identity checks).

    Pickled in sorted-sink order with a fixed protocol, so the digest is
    stable across processes for the deterministic payload types the
    workloads produce (lists, scalars, numpy arrays).
    """
    names = sorted(outputs)
    blob = pickle.dumps(
        (names, [outputs[name] for name in names]), protocol=4
    )
    return hashlib.sha256(blob).hexdigest()


def _build_cache(spec: JobSpec) -> ResultCache:
    store = SharedCacheStore(
        spec.cache_dir,
        tenant=spec.tenant,
        quota_bytes=spec.quota_bytes,
        flight_wait=spec.singleflight_wait,
    )
    return ResultCache(store=store)


def run_job(raw_spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one submission; never raises (errors are reported).

    The uncaught-exception path returns ``ok=False`` with the traceback —
    a worker process must survive a failing job (the pool is long-lived
    and a dead worker would strand its slot).
    """
    spec = JobSpec.from_dict(raw_spec)
    started = time.perf_counter()
    try:
        return _run(spec, started)
    except Exception:  # noqa: BLE001 - ferried to the service as a failure
        return {
            "job_id": spec.job_id,
            "tenant": spec.tenant,
            "workload": spec.workload,
            "ok": False,
            "error": traceback.format_exc(limit=20),
            "wall_s": time.perf_counter() - started,
        }


def _run(spec: JobSpec, started: float) -> Dict[str, Any]:
    from ..lab.workloads import get_workload

    workload = get_workload(spec.workload)
    cluster = workload.make_cluster()
    config = workload.make_config()
    if spec.cache_dir is not None:
        config.cache = _build_cache(spec)
    result = run_mdf(
        workload.make_mdf(),
        cluster,
        scheduler=spec.scheduler,
        memory=spec.memory,
        config=config,
        validate=False,  # violations are *reported*, not raised
        live=spec.stream_path,
        backend=spec.backend,
    )
    violations = validate_trace(result.events) if spec.validate else []
    cache = config.cache
    summary: Dict[str, Any] = {
        "job_id": spec.job_id,
        "tenant": spec.tenant,
        "workload": spec.workload,
        "ok": True,
        "error": None,
        "wall_s": time.perf_counter() - started,
        "completion_time": result.completion_time,
        "outputs_digest": outputs_digest(result.outputs),
        "violations": len(violations),
        "violation_messages": [str(v) for v in violations[:5]],
        "stream_path": spec.stream_path,
        "events": len(result.events) if result.events is not None else 0,
    }
    if cache is not None:
        # a fresh cache per job makes totals == this run's deltas
        summary["cache"] = cache.stats.as_dict()
        store = getattr(cache, "store", None)
        if spec.obs and store is not None and hasattr(store, "obs_counters"):
            summary["store"] = store.obs_counters()
    if spec.obs:
        from .obs import JOB_VIEW_FAMILIES, PROFILE_CATEGORIES

        registry = cluster.obs
        # only the trace-reconstructible counter families cross the pipe:
        # that is what the service merges, and what replaying the job's
        # NDJSON stream through the PR2 bridge can rebuild exactly
        summary["obs"] = registry.snapshot(names=JOB_VIEW_FAMILIES)
        summary["profile"] = {
            category: registry.value(f"profile_{category}_seconds")
            for category in PROFILE_CATEGORIES
        }
    return summary
