"""Command-line entry: ``python -m repro.service <command> --spool DIR``.

The service is file-based (no network): a *spool directory* is the whole
protocol, so clients and the server only need a shared filesystem.

::

    spool/
      inbox/      submission tickets (JSON, written atomically by `submit`)
      streams/    one live NDJSON trace per job (PR7 StreamWriter format)
      cache/      the shared cross-tenant result store (default location)
      state.json  full service snapshot, atomically replaced on change

commands:

``serve``
    Run the service: ingest inbox tickets, admit them through the
    weighted fair-share queue, run up to ``--workers`` jobs in parallel
    over the shared cache.  Exits when the spool has been idle for
    ``--max-idle`` wall seconds (or immediately after draining the
    current inbox with ``--once``).
``submit``
    Write one submission ticket; prints the ticket path.  The ticket is
    picked up by a running (or later) ``serve``.
``status``
    Print the latest ``state.json`` snapshot as a per-tenant/per-job
    summary table.  The snapshot is re-read atomically on every call
    and its **age** is surfaced (a dead server shows up as a stale
    snapshot, not as live state).  ``--metrics`` prints the service
    registry's Prometheus text (JSON with ``--json``) instead.
``follow``
    Tail one job's live NDJSON stream with the ``repro.live`` terminal
    dashboard (progress, per-branch status, watchdog alerts).
``top``
    Follow-mode whole-service dashboard beside the per-job ``follow``:
    slots, per-state job counts, per-tenant fairness shares and SLO
    attainment, per-workload latency percentiles, recent alerts —
    re-rendered from ``state.json`` + ``metrics.json`` every interval.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from .jobs import DONE, FAILED
from .service import JobService

USAGE = """\
usage: python -m repro.service <command> --spool DIR [options]

commands:
  serve     run the service over the spool directory
  submit    queue one job (writes an inbox ticket)
  status    print the latest service snapshot
  follow    tail one job's live trace dashboard
  top       follow-mode whole-service dashboard

serve options:
  --workers N           concurrent worker processes (default 2)
  --slots N             admission window (default: workers)
  --tenant NAME:WEIGHT  pre-register a tenant weight (repeatable)
  --quota-bytes N       per-tenant shared-cache byte quota
  --backend NAME        default execution backend (serial|mp)
  --max-idle SECONDS    exit after this much inbox+queue silence (default 5)
  --once                drain the current inbox, then exit
  --no-validate         skip the per-job trace validators

submit options:
  --tenant NAME         submitting tenant (default "default")
  --workload NAME       lab-zoo workload name (required)
  --scheduler NAME      scheduler policy (default bas)
  --memory NAME         eviction policy (default amm)
  --backend NAME        execution backend (default serial)
  --cost X              fair-share cost hint (default 1.0)

status options:
  --json                print the raw snapshot (age injected) as JSON
  --metrics             print the service metrics export instead
                        (Prometheus text; JSON with --json)
  --stale-after S       age beyond which the snapshot is flagged STALE
                        (default 30)

follow options:
  --job JOB_ID          job to follow (default: most recent)
  (remaining flags pass through to `python -m repro.live`)

top options:
  --interval S          refresh period (default 2.0)
  --iterations N        stop after N renders (default: until ^C)
  --once                render a single frame and exit
  --stale-after S       stale threshold, as in status (default 30)
"""


def _pop_flag(argv: List[str], flag: str) -> bool:
    if flag in argv:
        argv.remove(flag)
        return True
    return False


def _pop_opt(argv: List[str], flag: str) -> Optional[str]:
    if flag not in argv:
        return None
    i = argv.index(flag)
    try:
        value = argv[i + 1]
    except IndexError:
        raise SystemExit(f"{flag} needs an argument")
    del argv[i : i + 2]
    return value


def _pop_all(argv: List[str], flag: str) -> List[str]:
    values = []
    while flag in argv:
        values.append(_pop_opt(argv, flag))
    return values


def _inbox(spool: str) -> str:
    path = os.path.join(spool, "inbox")
    os.makedirs(path, exist_ok=True)
    return path


def _write_ticket(spool: str, payload: Dict[str, Any]) -> str:
    """Atomically drop one submission ticket into the inbox."""
    inbox = _inbox(spool)
    name = f"{time.time():.6f}-{os.getpid()}.json"
    tmp = os.path.join(inbox, f".{name}.tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, sort_keys=True)
    final = os.path.join(inbox, name)
    os.replace(tmp, final)
    return final


def _ingest(service: JobService, spool: str, out: TextIO) -> int:
    """Submit every inbox ticket (oldest first); returns the count."""
    inbox = _inbox(spool)
    count = 0
    for name in sorted(os.listdir(inbox)):
        if name.startswith(".") or not name.endswith(".json"):
            continue
        path = os.path.join(inbox, name)
        try:
            with open(path) as fh:
                ticket = json.load(fh)
        except (OSError, ValueError) as exc:
            out.write(f"bad ticket {name}: {exc}\n")
            os.unlink(path)
            continue
        tenant = ticket.pop("tenant", "default")
        workload = ticket.pop("workload", None)
        os.unlink(path)
        if not workload:
            out.write(f"bad ticket {name}: no workload\n")
            continue
        job_id = service.submit(tenant, workload, **ticket)
        out.write(f"{job_id}  tenant={tenant}  workload={workload}\n")
        count += 1
    return count


# ----------------------------------------------------------------- serve
def cmd_serve(argv: List[str], spool: str, out: TextIO) -> int:
    workers = int(_pop_opt(argv, "--workers") or 2)
    slots = _pop_opt(argv, "--slots")
    quota = _pop_opt(argv, "--quota-bytes")
    backend = _pop_opt(argv, "--backend")
    max_idle = float(_pop_opt(argv, "--max-idle") or 5.0)
    once = _pop_flag(argv, "--once")
    validate = not _pop_flag(argv, "--no-validate")
    tenants: Dict[str, float] = {}
    for spec in _pop_all(argv, "--tenant"):
        name, _, weight = spec.partition(":")
        tenants[name] = float(weight) if weight else 1.0
    if argv:
        out.write(f"unknown serve arguments: {argv}\n")
        return 2
    service = JobService(
        workers=workers,
        slots=int(slots) if slots else None,
        tenants=tenants,
        spool=spool,
        quota_bytes=int(quota) if quota else None,
        validate=validate,
    )
    out.write(
        f"serving spool={spool} workers={service.workers} "
        f"slots={service.queue.slots}\n"
    )
    last_activity = time.monotonic()
    with service:
        while True:
            moved = _ingest(service, spool, out)
            moved += service.pump()
            if moved:
                last_activity = time.monotonic()
            busy = service.queue.backlog or service._running
            if once and not busy:
                break
            if not busy and time.monotonic() - last_activity >= max_idle:
                break
            time.sleep(0.02 if busy else 0.1)
        service.drain()
    done = sum(1 for r in service.records.values() if r.status == DONE)
    failed = sum(1 for r in service.records.values() if r.status == FAILED)
    out.write(f"served {len(service.records)} job(s): {done} done, {failed} failed\n")
    return 1 if failed else 0


# ---------------------------------------------------------------- submit
def cmd_submit(argv: List[str], spool: str, out: TextIO) -> int:
    tenant = _pop_opt(argv, "--tenant") or "default"
    workload = _pop_opt(argv, "--workload")
    if not workload:
        out.write("submit requires --workload NAME\n")
        return 2
    ticket: Dict[str, Any] = {"tenant": tenant, "workload": workload}
    for flag, key in (
        ("--scheduler", "scheduler"),
        ("--memory", "memory"),
        ("--backend", "backend"),
    ):
        value = _pop_opt(argv, flag)
        if value is not None:
            ticket[key] = value
    cost = _pop_opt(argv, "--cost")
    if cost is not None:
        ticket["cost"] = float(cost)
    if argv:
        out.write(f"unknown submit arguments: {argv}\n")
        return 2
    path = _write_ticket(spool, ticket)
    out.write(f"queued ticket {os.path.basename(path)}\n")
    return 0


# ---------------------------------------------------------------- status
def _load_state(spool: str) -> Optional[Dict[str, Any]]:
    """Re-read ``state.json`` freshly on every call (never cached).

    The server publishes with an atomic ``os.replace``, so an open file
    is always one complete snapshot; a decode error can still happen if
    the file is replaced by a non-atomic writer, so one retry absorbs
    the race instead of reporting a dead service.
    """
    path = os.path.join(spool, "state.json")
    for attempt in range(2):
        try:
            with open(path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except ValueError:
            if attempt:
                raise
            time.sleep(0.05)
    return None  # pragma: no cover - loop always returns/raises


def _snapshot_age(state: Dict[str, Any]) -> Optional[float]:
    updated = state.get("updated_unix")
    if updated is None:
        return None
    return max(0.0, time.time() - float(updated))


def _age_line(state: Dict[str, Any], stale_after: float) -> str:
    age = _snapshot_age(state)
    if age is None:
        return "snapshot age: unknown (no updated_unix)\n"
    flag = "  (STALE — server gone or wedged?)" if age > stale_after else ""
    return f"snapshot age: {age:.1f}s{flag}\n"


def cmd_status(argv: List[str], spool: str, out: TextIO) -> int:
    as_json = _pop_flag(argv, "--json")
    metrics = _pop_flag(argv, "--metrics")
    stale_after = float(_pop_opt(argv, "--stale-after") or 30.0)
    if metrics:
        name = "metrics.json" if as_json else "metrics.prom"
        path = os.path.join(spool, name)
        try:
            with open(path) as fh:
                out.write(fh.read())
        except FileNotFoundError:
            out.write(
                f"no {name} under {spool} (service obs plane not running?)\n"
            )
            return 2
        return 0
    state = _load_state(spool)
    if state is None:
        out.write(f"no state.json under {spool} (service not started?)\n")
        return 2
    if as_json:
        payload = dict(state, snapshot_age_s=_snapshot_age(state))
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
        return 0
    out.write(_age_line(state, stale_after))
    counts = state.get("counts", {})
    out.write(
        "jobs: "
        + "  ".join(f"{k}={counts.get(k, 0)}" for k in sorted(counts))
        + f"  (slots {state.get('busy', 0)}/{state.get('slots', '?')})\n"
    )
    shares = state.get("admission_shares", {})
    for t in state.get("tenants", []):
        share = shares.get(t["name"])
        out.write(
            f"  tenant {t['name']:<12} weight={t['weight']:<5g}"
            f" submitted={t['submitted']:<3} completed={t['completed']:<3}"
            f" share={share:.2f}\n" if share is not None else
            f"  tenant {t['name']:<12} weight={t['weight']:<5g}"
            f" submitted={t['submitted']:<3} completed={t['completed']:<3}\n"
        )
    for job in state.get("jobs", []):
        spec = job["spec"]
        latency = job.get("latency")
        extra = f"  {latency:.2f}s" if latency is not None else ""
        out.write(
            f"  {spec['job_id']}  {job['status']:<8} {spec['tenant']:<12}"
            f" {spec['workload']}{extra}\n"
        )
    obs = state.get("obs") or {}
    alerts = obs.get("alerts") or []
    if alerts:
        out.write(f"service alerts: {len(alerts)}\n")
        for alert in alerts[-5:]:
            out.write(
                f"  [{alert['kind']}] {alert['subject']}: {alert['message']}\n"
            )
    return 0


# ------------------------------------------------------------------- top
def _load_metrics(spool: str) -> Optional[Dict[str, Any]]:
    try:
        with open(os.path.join(spool, "metrics.json")) as fh:
            return json.load(fh)
    except (FileNotFoundError, ValueError):
        return None


def _render_top(
    state: Dict[str, Any],
    metrics: Optional[Dict[str, Any]],
    stale_after: float,
) -> str:
    """One dashboard frame from the published snapshot + metrics export."""
    lines: List[str] = ["repro service top", "=" * 64]
    counts = state.get("counts", {})
    lines.append(
        "jobs: "
        + "  ".join(f"{k}={counts.get(k, 0)}" for k in sorted(counts))
        + f"    slots {state.get('busy', 0)}/{state.get('slots', '?')}"
    )
    lines.append(_age_line(state, stale_after).rstrip("\n"))
    obs = state.get("obs") or {}
    fairness = obs.get("fairness") or {}
    slo = obs.get("slo") or {}
    shares = state.get("admission_shares", {})
    lines.append("")
    lines.append(
        "tenant        weight  backlog  done  share(achieved/entitled)"
        "  slo-attained"
    )
    for t in state.get("tenants", []):
        name = t["name"]
        fair = fairness.get(name)
        fair_cell = (
            f"{fair['achieved_share']:.2f}/{fair['entitled_share']:.2f}"
            if fair
            else (f"{shares[name]:.2f}/-" if name in shares else "-")
        )
        slo_cell = (
            f"{slo[name]['attained']:.2f}"
            + ("" if slo[name]["met"] else " BREACH")
            if name in slo
            else "-"
        )
        lines.append(
            f"{name:<12}  {t['weight']:>6g}  {t['backlog']:>7}"
            f"  {t['completed']:>4}  {fair_cell:>24}  {slo_cell:>12}"
        )
    if metrics is not None:
        latency = metrics.get("service_latency_seconds", {}).get("series", [])
        if latency:
            lines.append("")
            lines.append("tenant        workload              n     p50      p99")
            for entry in latency:
                labels = entry.get("labels", {})
                p50, p99 = entry.get("p50"), entry.get("p99")
                lines.append(
                    f"{labels.get('tenant', '?'):<12}"
                    f"  {labels.get('workload', '?'):<18}"
                    f"  {entry.get('count', 0):>3}"
                    f"  {p50 if p50 is None else format(p50, '.3f'):>6}s"
                    f"  {p99 if p99 is None else format(p99, '.3f'):>6}s"
                )
    alerts = obs.get("alerts") or []
    lines.append("")
    lines.append(f"alerts: {len(alerts)}")
    for alert in alerts[-5:]:
        lines.append(f"  [{alert['kind']}] {alert['subject']}: {alert['message']}")
    return "\n".join(lines) + "\n"


def cmd_top(argv: List[str], spool: str, out: TextIO) -> int:
    interval = float(_pop_opt(argv, "--interval") or 2.0)
    iterations = int(_pop_opt(argv, "--iterations") or 0)
    if _pop_flag(argv, "--once"):
        iterations = 1
    stale_after = float(_pop_opt(argv, "--stale-after") or 30.0)
    if argv:
        out.write(f"unknown top arguments: {argv}\n")
        return 2
    rendered = 0
    while True:
        state = _load_state(spool)
        if state is None:
            out.write(f"no state.json under {spool} (service not started?)\n")
            return 2
        frame = _render_top(state, _load_metrics(spool), stale_after)
        if rendered and getattr(out, "isatty", lambda: False)():
            out.write("\x1b[2J\x1b[H")  # clear + home between frames
        elif rendered:
            out.write("-" * 64 + "\n")
        out.write(frame)
        rendered += 1
        if iterations and rendered >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


# ---------------------------------------------------------------- follow
def cmd_follow(argv: List[str], spool: str, out: TextIO) -> int:
    job_id = _pop_opt(argv, "--job")
    state = _load_state(spool)
    stream = None
    if state is not None:
        jobs = state.get("jobs", [])
        if job_id is None and jobs:
            job_id = jobs[-1]["spec"]["job_id"]
        for job in jobs:
            if job["spec"]["job_id"] == job_id:
                stream = job["spec"].get("stream_path")
                break
    if stream is None and job_id is not None:
        stream = os.path.join(spool, "streams", f"{job_id}.ndjson")
    if stream is None:
        out.write("no job to follow (use --job JOB_ID)\n")
        return 2
    from ..live.__main__ import main as live_main

    if "--follow" not in argv and "-f" not in argv:
        argv.append("--follow")
    return live_main([stream] + argv, out=out)


def main(argv: Optional[List[str]] = None, out: TextIO = sys.stdout) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or "--help" in argv or "-h" in argv:
        out.write(USAGE)
        return 0 if argv else 2
    command, argv = argv[0], argv[1:]
    spool = _pop_opt(argv, "--spool")
    if spool is None:
        out.write("every command needs --spool DIR\n")
        return 2
    os.makedirs(spool, exist_ok=True)
    handlers = {
        "serve": cmd_serve,
        "submit": cmd_submit,
        "status": cmd_status,
        "follow": cmd_follow,
        "top": cmd_top,
    }
    handler = handlers.get(command)
    if handler is None:
        out.write(USAGE)
        return 2
    return handler(argv, spool, out)


if __name__ == "__main__":
    sys.exit(main())
