"""Command-line entry: ``python -m repro.service <command> --spool DIR``.

The service is file-based (no network): a *spool directory* is the whole
protocol, so clients and the server only need a shared filesystem.

::

    spool/
      inbox/      submission tickets (JSON, written atomically by `submit`)
      streams/    one live NDJSON trace per job (PR7 StreamWriter format)
      cache/      the shared cross-tenant result store (default location)
      state.json  full service snapshot, atomically replaced on change

commands:

``serve``
    Run the service: ingest inbox tickets, admit them through the
    weighted fair-share queue, run up to ``--workers`` jobs in parallel
    over the shared cache.  Exits when the spool has been idle for
    ``--max-idle`` wall seconds (or immediately after draining the
    current inbox with ``--once``).
``submit``
    Write one submission ticket; prints the ticket path.  The ticket is
    picked up by a running (or later) ``serve``.
``status``
    Print the latest ``state.json`` snapshot as a per-tenant/per-job
    summary table.
``follow``
    Tail one job's live NDJSON stream with the ``repro.live`` terminal
    dashboard (progress, per-branch status, watchdog alerts).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from .jobs import DONE, FAILED
from .service import JobService

USAGE = """\
usage: python -m repro.service <command> --spool DIR [options]

commands:
  serve     run the service over the spool directory
  submit    queue one job (writes an inbox ticket)
  status    print the latest service snapshot
  follow    tail one job's live trace dashboard

serve options:
  --workers N           concurrent worker processes (default 2)
  --slots N             admission window (default: workers)
  --tenant NAME:WEIGHT  pre-register a tenant weight (repeatable)
  --quota-bytes N       per-tenant shared-cache byte quota
  --backend NAME        default execution backend (serial|mp)
  --max-idle SECONDS    exit after this much inbox+queue silence (default 5)
  --once                drain the current inbox, then exit
  --no-validate         skip the per-job trace validators

submit options:
  --tenant NAME         submitting tenant (default "default")
  --workload NAME       lab-zoo workload name (required)
  --scheduler NAME      scheduler policy (default bas)
  --memory NAME         eviction policy (default amm)
  --backend NAME        execution backend (default serial)
  --cost X              fair-share cost hint (default 1.0)

follow options:
  --job JOB_ID          job to follow (default: most recent)
  (remaining flags pass through to `python -m repro.live`)
"""


def _pop_flag(argv: List[str], flag: str) -> bool:
    if flag in argv:
        argv.remove(flag)
        return True
    return False


def _pop_opt(argv: List[str], flag: str) -> Optional[str]:
    if flag not in argv:
        return None
    i = argv.index(flag)
    try:
        value = argv[i + 1]
    except IndexError:
        raise SystemExit(f"{flag} needs an argument")
    del argv[i : i + 2]
    return value


def _pop_all(argv: List[str], flag: str) -> List[str]:
    values = []
    while flag in argv:
        values.append(_pop_opt(argv, flag))
    return values


def _inbox(spool: str) -> str:
    path = os.path.join(spool, "inbox")
    os.makedirs(path, exist_ok=True)
    return path


def _write_ticket(spool: str, payload: Dict[str, Any]) -> str:
    """Atomically drop one submission ticket into the inbox."""
    inbox = _inbox(spool)
    name = f"{time.time():.6f}-{os.getpid()}.json"
    tmp = os.path.join(inbox, f".{name}.tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, sort_keys=True)
    final = os.path.join(inbox, name)
    os.replace(tmp, final)
    return final


def _ingest(service: JobService, spool: str, out: TextIO) -> int:
    """Submit every inbox ticket (oldest first); returns the count."""
    inbox = _inbox(spool)
    count = 0
    for name in sorted(os.listdir(inbox)):
        if name.startswith(".") or not name.endswith(".json"):
            continue
        path = os.path.join(inbox, name)
        try:
            with open(path) as fh:
                ticket = json.load(fh)
        except (OSError, ValueError) as exc:
            out.write(f"bad ticket {name}: {exc}\n")
            os.unlink(path)
            continue
        tenant = ticket.pop("tenant", "default")
        workload = ticket.pop("workload", None)
        os.unlink(path)
        if not workload:
            out.write(f"bad ticket {name}: no workload\n")
            continue
        job_id = service.submit(tenant, workload, **ticket)
        out.write(f"{job_id}  tenant={tenant}  workload={workload}\n")
        count += 1
    return count


# ----------------------------------------------------------------- serve
def cmd_serve(argv: List[str], spool: str, out: TextIO) -> int:
    workers = int(_pop_opt(argv, "--workers") or 2)
    slots = _pop_opt(argv, "--slots")
    quota = _pop_opt(argv, "--quota-bytes")
    backend = _pop_opt(argv, "--backend")
    max_idle = float(_pop_opt(argv, "--max-idle") or 5.0)
    once = _pop_flag(argv, "--once")
    validate = not _pop_flag(argv, "--no-validate")
    tenants: Dict[str, float] = {}
    for spec in _pop_all(argv, "--tenant"):
        name, _, weight = spec.partition(":")
        tenants[name] = float(weight) if weight else 1.0
    if argv:
        out.write(f"unknown serve arguments: {argv}\n")
        return 2
    service = JobService(
        workers=workers,
        slots=int(slots) if slots else None,
        tenants=tenants,
        spool=spool,
        quota_bytes=int(quota) if quota else None,
        validate=validate,
    )
    out.write(
        f"serving spool={spool} workers={service.workers} "
        f"slots={service.queue.slots}\n"
    )
    last_activity = time.monotonic()
    with service:
        while True:
            moved = _ingest(service, spool, out)
            moved += service.pump()
            if moved:
                last_activity = time.monotonic()
            busy = service.queue.backlog or service._running
            if once and not busy:
                break
            if not busy and time.monotonic() - last_activity >= max_idle:
                break
            time.sleep(0.02 if busy else 0.1)
        service.drain()
    done = sum(1 for r in service.records.values() if r.status == DONE)
    failed = sum(1 for r in service.records.values() if r.status == FAILED)
    out.write(f"served {len(service.records)} job(s): {done} done, {failed} failed\n")
    return 1 if failed else 0


# ---------------------------------------------------------------- submit
def cmd_submit(argv: List[str], spool: str, out: TextIO) -> int:
    tenant = _pop_opt(argv, "--tenant") or "default"
    workload = _pop_opt(argv, "--workload")
    if not workload:
        out.write("submit requires --workload NAME\n")
        return 2
    ticket: Dict[str, Any] = {"tenant": tenant, "workload": workload}
    for flag, key in (
        ("--scheduler", "scheduler"),
        ("--memory", "memory"),
        ("--backend", "backend"),
    ):
        value = _pop_opt(argv, flag)
        if value is not None:
            ticket[key] = value
    cost = _pop_opt(argv, "--cost")
    if cost is not None:
        ticket["cost"] = float(cost)
    if argv:
        out.write(f"unknown submit arguments: {argv}\n")
        return 2
    path = _write_ticket(spool, ticket)
    out.write(f"queued ticket {os.path.basename(path)}\n")
    return 0


# ---------------------------------------------------------------- status
def _load_state(spool: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(spool, "state.json")
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def cmd_status(argv: List[str], spool: str, out: TextIO) -> int:
    as_json = _pop_flag(argv, "--json")
    state = _load_state(spool)
    if state is None:
        out.write(f"no state.json under {spool} (service not started?)\n")
        return 2
    if as_json:
        json.dump(state, out, indent=2, sort_keys=True)
        out.write("\n")
        return 0
    counts = state.get("counts", {})
    out.write(
        "jobs: "
        + "  ".join(f"{k}={counts.get(k, 0)}" for k in sorted(counts))
        + f"  (slots {state.get('busy', 0)}/{state.get('slots', '?')})\n"
    )
    shares = state.get("admission_shares", {})
    for t in state.get("tenants", []):
        share = shares.get(t["name"])
        out.write(
            f"  tenant {t['name']:<12} weight={t['weight']:<5g}"
            f" submitted={t['submitted']:<3} completed={t['completed']:<3}"
            f" share={share:.2f}\n" if share is not None else
            f"  tenant {t['name']:<12} weight={t['weight']:<5g}"
            f" submitted={t['submitted']:<3} completed={t['completed']:<3}\n"
        )
    for job in state.get("jobs", []):
        spec = job["spec"]
        latency = job.get("latency")
        extra = f"  {latency:.2f}s" if latency is not None else ""
        out.write(
            f"  {spec['job_id']}  {job['status']:<8} {spec['tenant']:<12}"
            f" {spec['workload']}{extra}\n"
        )
    return 0


# ---------------------------------------------------------------- follow
def cmd_follow(argv: List[str], spool: str, out: TextIO) -> int:
    job_id = _pop_opt(argv, "--job")
    state = _load_state(spool)
    stream = None
    if state is not None:
        jobs = state.get("jobs", [])
        if job_id is None and jobs:
            job_id = jobs[-1]["spec"]["job_id"]
        for job in jobs:
            if job["spec"]["job_id"] == job_id:
                stream = job["spec"].get("stream_path")
                break
    if stream is None and job_id is not None:
        stream = os.path.join(spool, "streams", f"{job_id}.ndjson")
    if stream is None:
        out.write("no job to follow (use --job JOB_ID)\n")
        return 2
    from ..live.__main__ import main as live_main

    if "--follow" not in argv and "-f" not in argv:
        argv.append("--follow")
    return live_main([stream] + argv, out=out)


def main(argv: Optional[List[str]] = None, out: TextIO = sys.stdout) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or "--help" in argv or "-h" in argv:
        out.write(USAGE)
        return 0 if argv else 2
    command, argv = argv[0], argv[1:]
    spool = _pop_opt(argv, "--spool")
    if spool is None:
        out.write("every command needs --spool DIR\n")
        return 2
    os.makedirs(spool, exist_ok=True)
    handlers = {
        "serve": cmd_serve,
        "submit": cmd_submit,
        "status": cmd_status,
        "follow": cmd_follow,
    }
    handler = handlers.get(command)
    if handler is None:
        out.write(USAGE)
        return 2
    return handler(argv, spool, out)


if __name__ == "__main__":
    sys.exit(main())
