"""Weighted fair-share admission queue (start-time fair queuing).

The k-parallel co-scheduler baseline (:mod:`repro.baselines.parallel`)
models the paper's §6.1 deployments as *waves* of k co-scheduled jobs —
fairness by construction, but only between jobs that happen to arrive
together.  The service generalises that into a real admission queue:
jobs arrive continuously from many tenants, at most ``slots`` run at
once (the wave width k, now a sliding window), and *which* queued job is
admitted next is decided by **start-time fair queuing** (SFQ):

* each tenant has a weight ``w`` (its fair share of the service);
* a job arriving for tenant ``T`` is tagged with a virtual start time
  ``S = max(V, F_T)`` and virtual finish time ``F = S + cost / w``,
  where ``V`` is the queue's virtual clock (the start tag of the last
  admitted job) and ``F_T`` the finish tag of ``T``'s previous arrival;
* the next admitted job is the queued job with the minimum finish tag
  (ties broken by tenant name, then FIFO within a tenant).

This gives the classic guarantees: work conservation (a slot never idles
while work is queued), no starvation (every finish tag is eventually the
minimum — ``V`` advances past any stalled tag), per-tenant FIFO order,
and long-run admission shares proportional to weights when every tenant
keeps a backlog.  ``cost`` is a relative size hint (any positive unit —
estimated simulated seconds work well); with uniform costs, admissions
converge to weighted round-robin.

The queue is deterministic and single-threaded on purpose — the service
pumps it from one dispatcher loop; no internal locking is needed.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["FairShareQueue", "QueuedJob", "TenantState"]


@dataclass
class QueuedJob:
    """One admission-queue entry (the payload is opaque to the queue)."""

    tenant: str
    payload: object
    cost: float
    #: SFQ virtual tags, assigned at enqueue
    start_tag: float = 0.0
    finish_tag: float = 0.0
    #: arrival sequence number (global FIFO tiebreak)
    seq: int = 0


@dataclass
class TenantState:
    """Per-tenant fair-share bookkeeping."""

    name: str
    weight: float = 1.0
    #: finish tag of the tenant's most recent arrival (SFQ back-pointer)
    last_finish: float = 0.0
    queued: Deque[QueuedJob] = field(default_factory=deque)
    submitted: int = 0
    admitted: int = 0
    completed: int = 0

    @property
    def backlog(self) -> int:
        return len(self.queued)


class FairShareQueue:
    """SFQ admission across tenants with a bounded concurrency window."""

    def __init__(self, slots: int = 2):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = int(slots)
        self.busy = 0
        self._tenants: Dict[str, TenantState] = {}
        self._vtime = 0.0
        self._seq = itertools.count()

    # ------------------------------------------------------------- tenants
    def register(self, tenant: str, weight: float = 1.0) -> TenantState:
        """Register a tenant (idempotent; re-registering updates weight)."""
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState(name=tenant, weight=float(weight))
            self._tenants[tenant] = state
        else:
            state.weight = float(weight)
        return state

    def tenant(self, name: str) -> TenantState:
        return self._tenants[name]

    @property
    def tenants(self) -> List[TenantState]:
        return [self._tenants[name] for name in sorted(self._tenants)]

    # -------------------------------------------------------------- queue
    def put(self, tenant: str, payload: object, cost: float = 1.0) -> QueuedJob:
        """Enqueue a job for a tenant, assigning its SFQ tags."""
        if cost <= 0:
            raise ValueError(f"job cost must be > 0, got {cost}")
        state = self._tenants.get(tenant) or self.register(tenant)
        job = QueuedJob(tenant=tenant, payload=payload, cost=float(cost))
        job.start_tag = max(self._vtime, state.last_finish)
        job.finish_tag = job.start_tag + job.cost / state.weight
        job.seq = next(self._seq)
        state.last_finish = job.finish_tag
        state.queued.append(job)
        state.submitted += 1
        return job

    @property
    def backlog(self) -> int:
        return sum(len(s.queued) for s in self._tenants.values())

    @property
    def free_slots(self) -> int:
        return max(0, self.slots - self.busy)

    def next_job(self) -> Optional[QueuedJob]:
        """Admit the fairest queued job, or ``None`` (no work / no slot).

        Consumes a slot; pair every successful call with :meth:`release`.
        Only tenant *heads* compete (per-tenant FIFO), and among heads
        the minimum finish tag wins — a tenant with twice the weight
        accumulates finish tags half as fast and is admitted twice as
        often under backlog.
        """
        if self.busy >= self.slots:
            return None
        best: Optional[QueuedJob] = None
        best_state: Optional[TenantState] = None
        for name in sorted(self._tenants):
            state = self._tenants[name]
            if not state.queued:
                continue
            head = state.queued[0]
            if best is None or (head.finish_tag, head.seq) < (
                best.finish_tag,
                best.seq,
            ):
                best, best_state = head, state
        if best is None or best_state is None:
            return None
        best_state.queued.popleft()
        best_state.admitted += 1
        self._vtime = max(self._vtime, best.start_tag)
        self.busy += 1
        return best

    def release(self, job: QueuedJob) -> None:
        """Return the slot an admitted job held (call on completion)."""
        if self.busy <= 0:
            raise RuntimeError("release() without a matching next_job()")
        self.busy -= 1
        state = self._tenants.get(job.tenant)
        if state is not None:
            state.completed += 1

    # ------------------------------------------------------------- audit
    @property
    def vtime(self) -> float:
        """The SFQ virtual clock (start tag of the last admitted job)."""
        return self._vtime

    def weights(self) -> Dict[str, float]:
        return {name: self._tenants[name].weight for name in sorted(self._tenants)}

    def pending_heads(self) -> Dict[str, Tuple[float, float]]:
        """``{tenant: (head finish tag, head cost)}`` for backlogged tenants.

        A snapshot of exactly the candidates the next :meth:`next_job`
        call will choose among — the fairness auditor records it at each
        admission to check the min-finish-tag discipline after the fact.
        """
        return {
            name: (state.queued[0].finish_tag, state.queued[0].cost)
            for name, state in sorted(self._tenants.items())
            if state.queued
        }

    def admission_shares(self) -> Dict[str, float]:
        """Fraction of admissions per tenant (empty dict before any)."""
        total = sum(s.admitted for s in self._tenants.values())
        if total == 0:
            return {}
        return {
            name: self._tenants[name].admitted / total
            for name in sorted(self._tenants)
        }
