"""Multi-tenant concurrent MDF job service (PR9).

The paper's story is a *single* exploratory job run well; this package
is what serving **many** of them looks like: a long-lived service that
accepts MDF submissions from many tenants, admits them through a
weighted fair-share queue (start-time fair queuing — the k-parallel
co-scheduler's waves generalised to a sliding window,
:mod:`repro.service.queue`), runs them concurrently on a pool of worker
processes (:mod:`repro.service.service`), and shares one cross-tenant
:class:`~repro.cache.SharedCacheStore` so any tenant's exploration warms
every other tenant's cache — with single-flight deduplication, per-tenant
byte quotas, and tenant-labelled hit/miss observability.

Per-job determinism is the load-bearing invariant: concurrency and cache
sharing change *real time only*; every job's sink outputs stay
byte-identical to a solo run and its trace passes all seven paper
validators.  The load generator (``python -m repro.bench --loadgen``)
measures throughput, latency percentiles and cross-tenant hit rates;
``python -m repro.service`` is the spool-directory CLI
(serve/submit/status/follow).  See ``docs/service.md``.
"""

from .jobs import DONE, FAILED, QUEUED, RUNNING, JobRecord, JobSpec
from .obs import (
    SERVICE_CONSISTENCY_VIEWS,
    SERVICE_LABEL_NAMES,
    FairnessAuditor,
    SLOTracker,
    ServiceObs,
    replay_service_registry,
    service_registry_diff,
)
from .queue import FairShareQueue, QueuedJob, TenantState
from .service import JobService
from .worker import outputs_digest, run_job

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "SERVICE_CONSISTENCY_VIEWS",
    "SERVICE_LABEL_NAMES",
    "FairShareQueue",
    "FairnessAuditor",
    "JobRecord",
    "JobService",
    "JobSpec",
    "QueuedJob",
    "SLOTracker",
    "ServiceObs",
    "TenantState",
    "outputs_digest",
    "replay_service_registry",
    "run_job",
    "service_registry_diff",
]
