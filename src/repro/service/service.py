"""The long-lived multi-tenant job service.

:class:`JobService` accepts MDF submissions from many tenants, admits
them through the weighted fair-share queue
(:class:`~repro.service.queue.FairShareQueue`), and runs up to
``workers`` jobs **concurrently in real processes** (a fork-context
pool; each job is one ``run_mdf`` call in a worker — the PR8 ``mp``
backend can additionally parallelise *within* a job).  All jobs share
one :class:`~repro.cache.SharedCacheStore` directory, so one tenant's
exploration warms every other tenant's cache, deduplicated in flight
and bounded per tenant by byte quotas.

Every running job streams its trace to ``<spool>/streams/<job>.ndjson``
through the PR7 :class:`~repro.live.stream.StreamWriter`, so clients can
follow per-submission progress/ETA live (``python -m repro.service
follow``); the service mirrors its full state to ``<spool>/state.json``
(atomic replace) for out-of-process ``status`` queries.

The dispatcher is a single-threaded pump — :meth:`pump` collects
finished jobs and admits queued ones; :meth:`drain` pumps until idle.
Determinism note: *which* jobs run concurrently affects only real time
and cache hit timing; each job's sink outputs stay byte-identical to a
solo run (asserted by the load generator and ``tests/service``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from .jobs import DONE, FAILED, QUEUED, RUNNING, JobRecord, JobSpec
from .obs import ServiceObs
from .queue import FairShareQueue, QueuedJob
from .worker import run_job

__all__ = ["JobService"]


class JobService:
    """Concurrent fair-share MDF job service over a shared result cache."""

    def __init__(
        self,
        workers: int = 2,
        slots: Optional[int] = None,
        tenants: Optional[Dict[str, float]] = None,
        cache_dir: Optional[str] = None,
        spool: Optional[str] = None,
        quota_bytes: Optional[int] = None,
        validate: bool = True,
        singleflight_wait: float = 5.0,
        cache: bool = True,
        obs: bool = True,
        slos: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.workers = max(1, int(workers))
        self.queue = FairShareQueue(slots=slots or self.workers)
        for name, weight in sorted((tenants or {}).items()):
            self.queue.register(name, weight)
        self.spool = spool or tempfile.mkdtemp(prefix="repro-service-")
        os.makedirs(os.path.join(self.spool, "streams"), exist_ok=True)
        if cache:
            self.cache_dir = cache_dir or os.path.join(self.spool, "cache")
            os.makedirs(self.cache_dir, exist_ok=True)
        else:
            self.cache_dir = None
        self.quota_bytes = quota_bytes
        self.validate = bool(validate)
        self.singleflight_wait = float(singleflight_wait)
        self.records: Dict[str, JobRecord] = {}
        self._running: Dict[str, Tuple[JobRecord, QueuedJob, Any]] = {}
        self._pool = None
        self._next_id = 0
        self._closed = False
        #: the service observability plane (None = obs off, PR9 behaviour)
        self.obs: Optional[ServiceObs] = None
        if obs:
            self.obs = ServiceObs(
                events_path=os.path.join(self.spool, "service_events.ndjson"),
                slots=self.queue.slots,
                weights=self.queue.weights(),
                slos=slos,
            )

    # ----------------------------------------------------------- lifecycle
    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = ctx.Pool(self.workers)
        return self._pool

    def close(self) -> None:
        """Stop the service (running jobs are abandoned, state persisted)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.write_state()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- submit
    def submit(
        self,
        tenant: str,
        workload: str,
        cost: float = 1.0,
        **overrides: Any,
    ) -> str:
        """Queue one job; returns its id.  ``overrides`` patch the spec
        (``scheduler``, ``memory``, ``backend``, ``validate``, ...)."""
        if self._closed:
            raise RuntimeError("service is closed")
        self._next_id += 1
        job_id = f"job-{self._next_id:04d}"
        spec = JobSpec(
            job_id=job_id,
            tenant=tenant,
            workload=workload,
            cache_dir=self.cache_dir,
            quota_bytes=self.quota_bytes,
            stream_path=os.path.join(self.spool, "streams", f"{job_id}.ndjson"),
            validate=self.validate,
            cost=cost,
            singleflight_wait=self.singleflight_wait,
            obs=self.obs is not None,
        )
        for key, value in overrides.items():
            if not hasattr(spec, key):
                raise TypeError(f"unknown JobSpec field {key!r}")
            setattr(spec, key, value)
        record = JobRecord(spec=spec)
        self.records[job_id] = record
        queued = self.queue.put(tenant, record, cost=spec.cost)
        if self.obs is not None:
            self.obs.job_submitted(record, queued, self.queue.vtime)
        self.write_state()
        return job_id

    # --------------------------------------------------------- dispatcher
    def pump(self) -> int:
        """One dispatcher turn: collect finished jobs, admit queued ones.

        Returns the number of state transitions (0 = nothing changed —
        callers may sleep).  Never blocks on a running job.
        """
        transitions = self._collect()
        transitions += self._admit()
        if transitions:
            self.write_state()
        return transitions

    def _collect(self) -> int:
        transitions = 0
        for job_id in sorted(self._running):
            record, queued, async_result = self._running[job_id]
            if not async_result.ready():
                continue
            del self._running[job_id]
            self.queue.release(queued)
            record.finished_at = time.time()
            snapshot = None
            try:
                result = async_result.get()
            except Exception as exc:  # noqa: BLE001 - pool-level failure
                record.status = FAILED
                record.error = f"{type(exc).__name__}: {exc}"
            else:
                # the registry snapshot feeds the service obs plane; it
                # never lands in the record (state.json stays lean)
                snapshot = result.pop("obs", None)
                record.result = result
                if result.get("ok"):
                    record.status = DONE
                else:
                    record.status = FAILED
                    record.error = result.get("error")
            if self.obs is not None:
                self.obs.job_finished(record, snapshot)
            transitions += 1
        return transitions

    def _admit(self) -> int:
        transitions = 0
        pool = None
        while self.queue.free_slots and self.queue.backlog:
            # snapshot the SFQ candidates *before* the pop: the fairness
            # auditor re-checks the min-finish-tag discipline against them
            heads = self.queue.pending_heads() if self.obs is not None else {}
            queued = self.queue.next_job()
            if queued is None:  # pragma: no cover - guarded by the while
                break
            pool = pool or self._ensure_pool()
            record: JobRecord = queued.payload
            record.status = RUNNING
            record.started_at = time.time()
            if self.obs is not None:
                self.obs.job_admitted(
                    record, queued, heads, self.queue.weights(), self.queue.vtime
                )
            async_result = pool.apply_async(run_job, (record.spec.as_dict(),))
            self._running[record.job_id] = (record, queued, async_result)
            transitions += 1
        return transitions

    def drain(
        self, timeout: Optional[float] = None, poll: float = 0.01
    ) -> List[JobRecord]:
        """Pump until every submission finished; returns finished records."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.queue.backlog or self._running:
            self.pump()
            if not (self.queue.backlog or self._running):
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"drain timed out with {self.queue.backlog} queued, "
                    f"{len(self._running)} running"
                )
            time.sleep(poll)
        return [
            self.records[job_id]
            for job_id in sorted(self.records)
            if self.records[job_id].status in (DONE, FAILED)
        ]

    # -------------------------------------------------------------- state
    def record(self, job_id: str) -> JobRecord:
        return self.records[job_id]

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the whole service."""
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for record in self.records.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return {
            "workers": self.workers,
            "slots": self.queue.slots,
            "busy": self.queue.busy,
            "counts": counts,
            "admission_shares": self.queue.admission_shares(),
            "tenants": [
                {
                    "name": t.name,
                    "weight": t.weight,
                    "submitted": t.submitted,
                    "admitted": t.admitted,
                    "completed": t.completed,
                    "backlog": t.backlog,
                }
                for t in self.queue.tenants
            ],
            "cache_dir": self.cache_dir,
            "spool": self.spool,
            "obs": self.obs.summary() if self.obs is not None else None,
            "jobs": [
                self.records[job_id].as_dict() for job_id in sorted(self.records)
            ],
        }

    def write_state(self) -> None:
        """Mirror the snapshot to ``<spool>/state.json`` (atomic)."""
        path = os.path.join(self.spool, "state.json")
        tmp = f"{path}.{os.getpid()}.tmp"
        payload = dict(self.status(), updated_unix=time.time())
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
        if self.obs is not None:
            self.obs.export(self.spool)
