"""Job submissions and lifecycle records for the multi-tenant service.

A :class:`JobSpec` is everything a worker process needs to execute one
MDF job — it must stay **picklable and JSON-serialisable** (specs cross
the process boundary to the worker pool and land in the spool's
``state.json`` for the CLI), so jobs reference workloads by *zoo name*
(:data:`repro.lab.workloads.WORKLOADS`) rather than carrying MDF objects
(whose operators are closures).

A :class:`JobRecord` is the service-side lifecycle of one submission:
queued → running → done/failed, with real (wall-clock) timestamps from
which the load generator derives submission-to-completion latency.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

__all__ = ["JobRecord", "JobSpec", "QUEUED", "RUNNING", "DONE", "FAILED"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class JobSpec:
    """One tenant's submission: which workload to run, and how."""

    job_id: str
    tenant: str
    #: lab-zoo workload name (the MDF factory lives in the registry)
    workload: str
    scheduler: str = "bas"
    memory: str = "amm"
    backend: str = "serial"
    #: shared cross-tenant store directory (None = per-job cache off)
    cache_dir: Optional[str] = None
    #: per-tenant byte quota applied by the shared store (None = unbounded)
    quota_bytes: Optional[int] = None
    #: NDJSON path the job streams its live trace to (None = no stream)
    stream_path: Optional[str] = None
    #: run the seven paper-invariant validators over the recorded trace
    #: and report (not raise) the violation count
    validate: bool = True
    #: relative cost hint for fair-share admission (any positive unit)
    cost: float = 1.0
    #: bounded real seconds a store miss waits on another job's in-flight
    #: computation of the same fingerprint before recomputing
    singleflight_wait: float = 5.0
    #: ship the job's obs-registry snapshot / profile seconds / store
    #: counters back to the service observability plane; off reproduces
    #: the plain PR9 worker payload
    obs: bool = True

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in raw.items() if k in known})


@dataclass
class JobRecord:
    """Service-side lifecycle of one submission."""

    spec: JobSpec
    status: str = QUEUED
    #: wall-clock (``time.time``) transition stamps
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: the worker's result payload (see ``repro.service.worker.run_job``)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion real seconds (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def as_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.as_dict(),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "result": self.result,
            "error": self.error,
        }
