"""Service-wide observability plane (PR10).

Job-level observability (:mod:`repro.obs`) is born and dies inside one
worker process; this module lifts it to the *service* altitude.  Each
worker ships its finished job's registry snapshot (restricted to the
trace-reconstructible counter families, :data:`JOB_VIEW_FAMILIES`),
profile-category seconds and cache/store counters back to the
dispatcher, which folds them into one long-lived
:class:`~repro.obs.registry.MetricsRegistry` labeled with the service
dimensions ``{tenant, workload, status, policy}`` — plus service-native
series: exact (nearest-rank, matching the load generator) queue-wait
and end-to-end latency histograms, pool-slot gauges, per-state job
gauges and tenant-labeled shared-cache counters.

On top of the registry sit two auditors reusing the
:mod:`repro.live.watchdogs` alert machinery (counted under
``service_alerts{policy=...}``):

* :class:`FairnessAuditor` — checks every admission against the fair
  queue's own virtual-clock tags (SFQ admits the minimum finish tag, so
  an admission whose finish tag exceeds a backlogged tenant's head tag
  by more than one job granule means that tenant was bypassed) and
  accumulates achieved vs entitled weighted service share per tenant;
* :class:`SLOTracker` — per-tenant latency/error objectives with
  sliding-window burn-rate alerts and attainment reporting.

**Replay parity** is the keystone invariant, mirroring the PR2
trace→metrics bridge: every job transition is appended to
``<spool>/service_events.ndjson`` with all derived scalars (queue wait,
latency, cache counters) *logged once*, and
:func:`replay_service_registry` rebuilds the whole service registry
from that log plus the per-job NDJSON streams (bridged through
:func:`~repro.obs.bridge.registry_from_trace`) such that
``diff_registries(live, replayed, SERVICE_CONSISTENCY_VIEWS) == []``.
Live and replay share one code path (:meth:`ServiceObs.apply`), so the
invariant holds by construction for the log-derived series and by the
PR2 bridge guarantee for the job-view families.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..cache.store import CacheStats
from ..live.watchdogs import Watchdog
from ..obs.bridge import CONSISTENCY_VIEWS, diff_registries, registry_from_trace
from ..obs.export import prometheus_text, registry_json
from ..obs.registry import MetricsRegistry

__all__ = [
    "JOB_VIEW_FAMILIES",
    "PROFILE_CATEGORIES",
    "SERVICE_CONSISTENCY_VIEWS",
    "SERVICE_LABEL_NAMES",
    "FairnessAuditor",
    "SLOTracker",
    "ServiceObs",
    "replay_service_registry",
    "service_registry_diff",
]

#: the service-plane label dimensions, in canonical order
SERVICE_LABEL_NAMES: Tuple[str, ...] = ("tenant", "workload", "status", "policy")

#: job-registry counter families the dispatcher folds into the service
#: registry (collapsed onto ``{tenant, workload}``) — exactly the
#: trace-reconstructible families of the PR2 bridge, so a replay from the
#: per-job NDJSON streams rebuilds identical totals
JOB_VIEW_FAMILIES: Tuple[str, ...] = tuple(
    sorted({name for name, _ in CONSISTENCY_VIEWS})
)

#: profiler categories with a ``profile_<cat>_seconds`` counter ("reload"
#: is a profiler-only refinement of "io" and has none)
PROFILE_CATEGORIES: Tuple[str, ...] = (
    "compute", "io", "network", "overhead", "evaluator", "recovery",
)

#: cache counters a finished job reports (CacheStats field names)
CACHE_COUNTER_KEYS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(CacheStats)
)

#: store-level counters the shared store exports (obs_counters hook)
STORE_COUNTER_KEYS: Tuple[str, ...] = (
    "quota_evictions", "corrupt_entries", "tmps_swept",
)

#: (instrument, label dims) pairs on which a replayed service registry
#: must equal the live one (the service-plane CONSISTENCY_VIEWS)
SERVICE_CONSISTENCY_VIEWS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        ("service_jobs", ("tenant", "workload", "status")),
        ("service_jobs_state", ("status",)),
        ("service_slots_total", ()),
        ("service_slots_busy", ()),
        ("service_slots_busy_peak", ()),
        ("service_busy_slot_seconds", ("tenant", "workload")),
        ("service_queue_wait_seconds", ("tenant", "workload")),
        ("service_latency_seconds", ("tenant", "workload")),
        ("service_alerts", ("tenant", "policy")),
    )
    + tuple(
        (f"service_cache_{key}", ("tenant", "workload"))
        for key in CACHE_COUNTER_KEYS
    )
    + tuple((f"service_store_{key}", ("tenant",)) for key in STORE_COUNTER_KEYS)
    + tuple((name, ("tenant", "workload")) for name in JOB_VIEW_FAMILIES)
)


# ------------------------------------------------------------- auditors
class FairnessAuditor(Watchdog):
    """Achieved vs entitled weighted service share, from the SFQ tags.

    Fed one record per admission (:meth:`on_admission`), carrying the
    queue's state *at the moment of admission*: the admitted job's
    virtual finish tag, every backlogged tenant's head tag and cost, and
    the tenant weights.  Two checks:

    * **bypass** — SFQ admits the minimum finish tag among backlogged
      heads, so ``admitted.finish_tag > head_tag(U) + granule(U)``
      (granule = the head's own ``cost / weight``) means tenant ``U``
      was skipped past, which a correct fair queue never does.  Latched
      per tenant: an injected starvation raises exactly one alert.
    * **share drift** — per tenant, admitted cost (*achieved*) vs the
      weight-proportional slice of all cost admitted while the tenant
      was backlogged (*entitled*).  SFQ's pairwise lag bound compounds
      across competitors: the legitimate gap for tenant ``U`` can reach
      ``granule(U) + max granule`` among the backlogged tenants, so the
      alert threshold is ``slack × (granule(U) + max granule)`` —
      transients stay silent (two equal tenants drift under one
      granule) while a rigged queue's drift grows without bound and
      cannot hide.

    Clean runs raise nothing (asserted by CI's service-obs smoke job).
    """

    kind = "fairness"
    counter_name = "service_alerts"

    def __init__(self, registry=None, slack: float = 2.0):
        super().__init__(registry)
        self.slack = float(slack)
        self.achieved: Dict[str, float] = {}
        self.entitled: Dict[str, float] = {}
        #: total cost admitted while the tenant was backlogged
        self.window_cost: Dict[str, float] = {}
        #: largest single job granule (cost/weight) seen per tenant window
        self.granule: Dict[str, float] = {}
        #: largest granule across *all* audited tenants (the pairwise
        #: SFQ lag bounds compound up to granule(U) + this)
        self.max_granule: float = 0.0
        self._latched: set = set()

    def on_event(self, event) -> None:  # pragma: no cover - not trace-fed
        raise NotImplementedError("FairnessAuditor is fed admissions, not traces")

    def on_admission(self, event: Dict[str, Any]) -> None:
        """Audit one admission record (a ``running`` service event)."""
        tenant = event["tenant"]
        cost = float(event["cost"])
        finish_tag = float(event["finish_tag"])
        weights = {k: float(v) for k, v in event.get("weights", {}).items()}
        heads: Dict[str, Any] = event.get("heads") or {}
        if not heads:
            return
        total_weight = sum(weights.get(u, 1.0) for u in heads)
        for name in sorted(heads):
            weight = weights.get(name, 1.0)
            self.window_cost[name] = self.window_cost.get(name, 0.0) + cost
            self.entitled[name] = (
                self.entitled.get(name, 0.0) + cost * weight / total_weight
            )
            self.granule[name] = max(
                self.granule.get(name, 0.0), cost / max(weight, 1e-12)
            )
            self.max_granule = max(self.max_granule, self.granule[name])
        self.achieved[tenant] = self.achieved.get(tenant, 0.0) + cost
        for name in sorted(heads):
            if name == tenant or name in self._latched:
                continue
            head_tag, head_cost = float(heads[name][0]), float(heads[name][1])
            head_granule = head_cost / max(weights.get(name, 1.0), 1e-12)
            if finish_tag > head_tag + head_granule + 1e-9:
                self._latched.add(name)
                self._raise(
                    float(event.get("t", 0.0)),
                    name,
                    f"bypassed: admitted tag {finish_tag:.6f} exceeds "
                    f"{name}'s head tag {head_tag:.6f} by more than one "
                    f"granule ({head_granule:.6f})",
                    {"finish_tag": finish_tag, "head_tag": head_tag,
                     "granule": head_granule},
                    tenant=name,
                )
        for name in sorted(heads):
            if name in self._latched:
                continue
            gap = abs(
                self.achieved.get(name, 0.0) - self.entitled.get(name, 0.0)
            )
            bound = self.slack * (self.granule.get(name, 0.0) + self.max_granule)
            if bound and gap > bound + 1e-9:
                self._latched.add(name)
                self._raise(
                    float(event.get("t", 0.0)),
                    name,
                    f"share drift: achieved {self.achieved.get(name, 0.0):.3f} "
                    f"vs entitled {self.entitled.get(name, 0.0):.3f} cost "
                    f"(bound {bound:.3f})",
                    {"achieved": self.achieved.get(name, 0.0),
                     "entitled": self.entitled.get(name, 0.0), "bound": bound},
                    tenant=name,
                )

    def shares(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant achieved/entitled cost and share over the tenant's
        backlogged windows (empty before any audited admission)."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.window_cost):
            window = self.window_cost[name]
            achieved = self.achieved.get(name, 0.0)
            entitled = self.entitled.get(name, 0.0)
            out[name] = {
                "achieved_cost": achieved,
                "entitled_cost": entitled,
                "achieved_share": achieved / window if window else 0.0,
                "entitled_share": entitled / window if window else 0.0,
                "granule": self.granule.get(name, 0.0),
                "window_cost": window,
            }
        return out


class SLOTracker(Watchdog):
    """Per-tenant latency/error-rate objectives with burn-rate alerts.

    An objective is ``{"latency_s": float | None, "target": float}``: a
    finished job is *good* when it succeeded and (if a latency objective
    is set) finished within ``latency_s`` wall seconds; the tenant's SLO
    is met when the good fraction stays >= ``target``.  Burn rate is the
    classic ratio: the bad fraction over the last ``window`` finished
    jobs divided by the error budget ``1 - target``; crossing
    ``burn_threshold`` raises one alert per excursion (re-armed when the
    window recovers).  Objectives come from the service config — exact
    tenant name first, the ``"*"`` wildcard as fallback; tenants with no
    objective are not tracked.
    """

    kind = "slo"
    counter_name = "service_alerts"

    def __init__(
        self,
        registry=None,
        slos: Optional[Dict[str, Dict[str, Any]]] = None,
        window: int = 20,
        burn_threshold: float = 2.0,
    ):
        super().__init__(registry)
        self.slos = {k: dict(v) for k, v in (slos or {}).items()}
        self.window = max(1, int(window))
        self.burn_threshold = float(burn_threshold)
        self._recent: Dict[str, Deque[bool]] = {}
        self._good: Dict[str, int] = {}
        self._total: Dict[str, int] = {}
        self._armed: Dict[str, bool] = {}

    def on_event(self, event) -> None:  # pragma: no cover - not trace-fed
        raise NotImplementedError("SLOTracker is fed finished jobs, not traces")

    def slo_for(self, tenant: str) -> Optional[Dict[str, Any]]:
        return self.slos.get(tenant) or self.slos.get("*")

    def on_finished(self, event: Dict[str, Any]) -> None:
        """Score one finished job (a ``done``/``failed`` service event)."""
        tenant = event["tenant"]
        slo = self.slo_for(tenant)
        if slo is None:
            return
        latency_obj = slo.get("latency_s")
        good = bool(event.get("ok"))
        latency = event.get("latency")
        if good and latency_obj is not None and latency is not None:
            good = float(latency) <= float(latency_obj)
        recent = self._recent.setdefault(tenant, deque(maxlen=self.window))
        recent.append(good)
        self._total[tenant] = self._total.get(tenant, 0) + 1
        self._good[tenant] = self._good.get(tenant, 0) + (1 if good else 0)
        target = float(slo.get("target", 0.95))
        budget = max(1e-9, 1.0 - target)
        bad_rate = (len(recent) - sum(recent)) / len(recent)
        burn = bad_rate / budget
        if burn >= self.burn_threshold:
            if self._armed.get(tenant, True):
                self._armed[tenant] = False
                self._raise(
                    float(event.get("t", 0.0)),
                    tenant,
                    f"error budget burning {burn:.1f}x sustainable "
                    f"({bad_rate:.2f} bad over last {len(recent)} jobs, "
                    f"target {target})",
                    {"burn_rate": burn, "bad_rate": bad_rate, "target": target},
                    tenant=tenant,
                )
        else:
            self._armed[tenant] = True

    def attainment(self) -> Dict[str, Dict[str, Any]]:
        """Per-tracked-tenant SLO attainment over all finished jobs."""
        out: Dict[str, Dict[str, Any]] = {}
        for tenant in sorted(self._total):
            slo = self.slo_for(tenant) or {}
            total = self._total[tenant]
            good = self._good.get(tenant, 0)
            recent = self._recent.get(tenant, deque())
            target = float(slo.get("target", 0.95))
            budget = max(1e-9, 1.0 - target)
            bad_rate = (
                (len(recent) - sum(recent)) / len(recent) if recent else 0.0
            )
            out[tenant] = {
                "target": target,
                "latency_s": slo.get("latency_s"),
                "jobs": total,
                "attained": good / total if total else 1.0,
                "met": (good / total if total else 1.0) >= target,
                "burn_rate": bad_rate / budget,
            }
        return out


# ---------------------------------------------------------- service obs
class ServiceObs:
    """The dispatcher-side observability plane of one :class:`JobService`.

    Owns the service registry, the fairness/SLO auditors and the
    ``service_events.ndjson`` append log.  The service calls the
    ``job_*`` recorders (which build an event dict, append it to the
    log, then :meth:`apply` it); :func:`replay_service_registry` calls
    :meth:`apply` on the logged dicts directly — one code path, so live
    and replayed registries agree by construction.
    """

    def __init__(
        self,
        events_path: Optional[str] = None,
        slots: Optional[int] = None,
        weights: Optional[Dict[str, float]] = None,
        slos: Optional[Dict[str, Dict[str, Any]]] = None,
        slo_window: int = 20,
        burn_threshold: float = 2.0,
    ):
        self.events_path = events_path
        self.registry = MetricsRegistry(label_names=SERVICE_LABEL_NAMES)
        self.fairness = FairnessAuditor(registry=self.registry)
        self.slo = SLOTracker(
            registry=self.registry,
            slos=slos,
            window=slo_window,
            burn_threshold=burn_threshold,
        )
        if events_path is not None and os.path.exists(events_path):
            os.unlink(events_path)  # one log per service lifetime
        config = {
            "event": "config",
            "slots": slots,
            "weights": dict(sorted((weights or {}).items())),
            "slos": {k: dict(v) for k, v in sorted((slos or {}).items())},
            "slo_window": slo_window,
            "burn_threshold": burn_threshold,
        }
        self.record(config)

    # ------------------------------------------------------------ alerts
    @property
    def alerts(self) -> List[Any]:
        return list(self.fairness.alerts) + list(self.slo.alerts)

    # ------------------------------------------------------- event intake
    def record(self, event: Dict[str, Any], job_registry=None) -> None:
        """Append one event to the log, then fold it into the registry."""
        if self.events_path is not None:
            with open(self.events_path, "a") as fh:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        self.apply(event, job_registry=job_registry)

    def apply(self, event: Dict[str, Any], job_registry=None) -> None:
        """Fold one service event into the registry (live *and* replay)."""
        kind = event["event"]
        reg = self.registry
        if kind == "config":
            # auditors are configured at construction (live and replay both
            # build their trackers from the same config values); the event
            # only carries registry-visible state
            if event.get("slots"):
                reg.gauge("service_slots_total").set(event["slots"])
            return
        tenant = event["tenant"]
        workload = event["workload"]
        if kind == "submitted":
            reg.counter(
                "service_jobs", tenant=tenant, workload=workload, status="queued"
            ).inc()
            reg.gauge("service_jobs_state", status="queued").inc()
        elif kind == "running":
            reg.counter(
                "service_jobs", tenant=tenant, workload=workload, status="running"
            ).inc()
            reg.gauge("service_jobs_state", status="queued").dec()
            reg.gauge("service_jobs_state", status="running").inc()
            busy = reg.gauge("service_slots_busy")
            busy.inc()
            reg.gauge("service_slots_busy_peak").set_max(busy.value)
            reg.histogram(
                "service_queue_wait_seconds",
                exact=True,
                tenant=tenant,
                workload=workload,
            ).observe(float(event["queue_wait"]))
            self.fairness.on_admission(event)
        elif kind in ("done", "failed"):
            reg.counter(
                "service_jobs", tenant=tenant, workload=workload, status=kind
            ).inc()
            reg.gauge("service_jobs_state", status="running").dec()
            reg.gauge("service_jobs_state", status=kind).inc()
            reg.gauge("service_slots_busy").dec()
            reg.histogram(
                "service_latency_seconds",
                exact=True,
                tenant=tenant,
                workload=workload,
            ).observe(float(event["latency"]))
            reg.counter(
                "service_busy_slot_seconds", tenant=tenant, workload=workload
            ).inc(float(event.get("busy_seconds", 0.0)))
            for key in CACHE_COUNTER_KEYS:
                value = (event.get("cache") or {}).get(key, 0)
                if value:
                    reg.counter(
                        f"service_cache_{key}", tenant=tenant, workload=workload
                    ).inc(value)
            for key in STORE_COUNTER_KEYS:
                value = (event.get("store") or {}).get(key, 0)
                if value:
                    reg.counter(f"service_store_{key}", tenant=tenant).inc(value)
            self.slo.on_finished(event)
            if job_registry is not None:
                reg.merge(
                    job_registry,
                    labels={"tenant": tenant, "workload": workload},
                    names=JOB_VIEW_FAMILIES,
                )
        else:
            raise ValueError(f"unknown service event kind {kind!r}")

    # ---------------------------------------------------- live recorders
    def job_submitted(self, record, queued, vtime: float) -> None:
        self.record({
            "event": "submitted",
            "t": record.submitted_at,
            "job": record.job_id,
            "tenant": record.tenant,
            "workload": record.spec.workload,
            "cost": queued.cost,
            "start_tag": queued.start_tag,
            "finish_tag": queued.finish_tag,
            "vtime": vtime,
        })

    def job_admitted(
        self,
        record,
        queued,
        heads: Dict[str, Tuple[float, float]],
        weights: Dict[str, float],
        vtime: float,
    ) -> None:
        self.record({
            "event": "running",
            "t": record.started_at,
            "job": record.job_id,
            "tenant": record.tenant,
            "workload": record.spec.workload,
            "queue_wait": record.started_at - record.submitted_at,
            "cost": queued.cost,
            "finish_tag": queued.finish_tag,
            "vtime": vtime,
            "heads": {k: list(v) for k, v in sorted(heads.items())},
            "weights": dict(sorted(weights.items())),
        })

    def job_finished(self, record, snapshot: Optional[Dict[str, Any]]) -> None:
        result = record.result or {}
        job_registry = (
            MetricsRegistry.from_snapshot(snapshot) if snapshot else None
        )
        self.record(
            {
                "event": record.status,  # "done" | "failed"
                "t": record.finished_at,
                "job": record.job_id,
                "tenant": record.tenant,
                "workload": record.spec.workload,
                "ok": record.status == "done",
                "latency": record.finished_at - record.submitted_at,
                "busy_seconds": (
                    record.finished_at - record.started_at
                    if record.started_at is not None
                    else 0.0
                ),
                "violations": result.get("violations", 0),
                "cache": result.get("cache") or {},
                "store": result.get("store") or {},
                "profile": result.get("profile") or {},
                "stream": record.spec.stream_path,
                "merged": job_registry is not None,
            },
            job_registry=job_registry,
        )

    # ------------------------------------------------------------ export
    def export(self, directory: str) -> None:
        """Write ``metrics.prom`` and ``metrics.json`` (atomic replace)."""
        for name, text in (
            ("metrics.prom", prometheus_text(self.registry)),
            ("metrics.json", registry_json(self.registry)),
        ):
            path = os.path.join(directory, name)
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "w") as fh:
                fh.write(text if text.endswith("\n") else text + "\n")
            os.replace(tmp, path)

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready obs block embedded in ``state.json``."""
        return {
            "fairness": self.fairness.shares(),
            "slo": self.slo.attainment(),
            "alerts": [
                {
                    "kind": a.kind,
                    "t": a.t,
                    "subject": a.subject,
                    "message": a.message,
                }
                for a in self.alerts
            ],
        }


# ------------------------------------------------------------- replay
def replay_service_registry(
    spool: str, events_path: Optional[str] = None
) -> ServiceObs:
    """Rebuild the service registry from the event log + job streams.

    Reads ``<spool>/service_events.ndjson`` (or ``events_path``) and
    applies every event through the same :meth:`ServiceObs.apply` path
    the live service used; finished events that merged a worker registry
    snapshot live (``merged: true``) re-derive that registry by bridging
    the job's NDJSON stream through the PR2 trace→metrics bridge.  The
    returned plane's registry must satisfy
    ``service_registry_diff(live, replayed) == []``.
    """
    from ..trace.events import Trace

    path = events_path or os.path.join(spool, "service_events.ndjson")
    replayed: Optional[ServiceObs] = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event["event"] == "config":
                replayed = ServiceObs(
                    events_path=None,
                    slots=event.get("slots"),
                    weights=event.get("weights"),
                    slos=event.get("slos"),
                    slo_window=event.get("slo_window", 20),
                    burn_threshold=event.get("burn_threshold", 2.0),
                )
                continue
            if replayed is None:
                raise ValueError(f"{path}: first event must be the config")
            job_registry = None
            if event.get("merged"):
                stream = event.get("stream") or os.path.join(
                    spool, "streams", f"{event['job']}.ndjson"
                )
                job_registry = registry_from_trace(Trace.load_jsonl(stream))
            replayed.apply(event, job_registry=job_registry)
    if replayed is None:
        raise ValueError(f"{path}: empty service event log")
    return replayed


def service_registry_diff(live: ServiceObs, replayed: ServiceObs) -> List[str]:
    """``diff_registries`` over the service-plane consistency views."""
    return diff_registries(
        live.registry, replayed.registry, views=SERVICE_CONSISTENCY_VIEWS
    )
