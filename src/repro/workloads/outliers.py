"""Outlier removal (the running KDE example's first pipeline step, §2.2).

The paper's basic filter removes values beyond ``x`` times the standard
deviation.  The surviving fraction is *monotone* in the threshold — the
property Example 3.4 and Table 1 exploit — so the matching evaluator is
the dataset-size/ratio evaluator with ``monotone=True``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def sigma_filter(threshold: float) -> Callable[[np.ndarray], np.ndarray]:
    """Keep values within ``threshold × std`` of the mean.

    Statistics are computed on the payload itself (partitions are i.i.d.
    slices of the input, so partition-local statistics converge to the
    global ones; this keeps the operator narrow, as in Fig. 1's dataflow).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    def filter_payload(payload) -> np.ndarray:
        data = np.asarray(payload, dtype=np.float64)
        if data.size == 0:
            return data
        mu = float(data.mean())
        sigma = float(data.std())
        if sigma == 0.0:
            return data
        mask = np.abs(data - mu) <= threshold * sigma
        return data[mask]

    filter_payload.__name__ = f"sigma_filter_{threshold}"
    return filter_payload


def surviving_fraction(original_count: int) -> Callable[[np.ndarray], float]:
    """Evaluator payload function: fraction of input values that survived."""
    original_count = max(1, int(original_count))

    def fraction(payload) -> float:
        return len(payload) / original_count

    return fraction
