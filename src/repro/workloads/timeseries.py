"""Time-series analysis job (§6.1, App. C Fig. 22).

Three pipeline steps over a sensor trace:

1. **masking** — drop points whose value range within a sliding window of
   length ``W`` exceeds a permitted ratio ``T`` (volatile regions are
   masked out);
2. **marking** — mark discrete events: positions where the value change
   over a window of length ``L`` exceeds magnitude ``M``;
3. **detection** — detect sequences of marked events that fall within a
   duration ``D``.

The MDF explores the masking parameters; its choose keeps only branches
whose surviving-point ratio stays above a threshold (masking must not be
too aggressive), pruning the rest before marking/detection run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np


def mask_series(window: int, threshold: float) -> Callable:
    """Masking operator: keep points whose window max/min ratio ≤ threshold.

    Payload: 1-D value array → array of surviving ``(index, value)`` rows.
    ``threshold`` is a ratio ≥ 1 (the paper sweeps 1.0001…1.5): smaller
    thresholds mask more aggressively, so the surviving fraction is
    monotone in the threshold.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    if threshold < 1.0:
        raise ValueError("threshold is a max/min ratio and must be >= 1")

    def mask(payload) -> np.ndarray:
        data = np.asarray(payload, dtype=np.float64)
        n = data.size
        if n < window:
            return np.empty((0, 2))
        # rolling window min/max via stride tricks kept simple: cumulative
        # approach with numpy's sliding_window_view
        windows = np.lib.stride_tricks.sliding_window_view(data, window)
        lo = windows.min(axis=1)
        hi = windows.max(axis=1)
        # guard: ratios need positive values; shift if necessary
        shift = min(0.0, float(lo.min()))
        if shift < 0.0:
            lo = lo - shift + 1.0
            hi = hi - shift + 1.0
        ratio = hi / np.maximum(lo, 1e-12)
        keep = ratio <= threshold
        # a point survives if the window ending at it is calm
        indices = np.arange(window - 1, n)[keep]
        return np.column_stack([indices, data[indices]])

    mask.__name__ = f"mask_w{window}_t{threshold}"
    return mask


def mark_events(window: int, magnitude: float) -> Callable:
    """Marking operator: positions where |Δ| over ``window`` ≥ ``magnitude``.

    Payload: (index, value) rows → (index, delta) rows of marked events.
    """
    if window < 2:
        raise ValueError("window must be >= 2")

    def mark(payload) -> np.ndarray:
        rows = np.asarray(payload, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] < window:
            return np.empty((0, 2))
        idx = rows[:, 0]
        values = rows[:, 1]
        delta = values[window - 1 :] - values[: -(window - 1)]
        events = np.abs(delta) >= magnitude
        return np.column_stack([idx[window - 1 :][events], delta[events]])

    mark.__name__ = f"mark_l{window}_m{magnitude}"
    return mark


def detect_sequences(duration: float, min_events: int = 3) -> Callable:
    """Detection operator: runs of ≥ ``min_events`` marks within ``duration``.

    Payload: (index, delta) rows → (start, end, count) rows of detected
    sequences, each indicating a sustained change.
    """

    def detect(payload) -> np.ndarray:
        rows = np.asarray(payload, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] == 0:
            return np.empty((0, 3))
        idx = rows[:, 0]
        sequences: List[Tuple[float, float, int]] = []
        start = 0
        for i in range(1, len(idx) + 1):
            closes = i == len(idx) or idx[i] - idx[start] > duration
            if closes:
                count = i - start
                if count >= min_events:
                    sequences.append((float(idx[start]), float(idx[i - 1]), count))
                start = i
        if not sequences:
            return np.empty((0, 3))
        return np.asarray(sequences, dtype=np.float64)

    detect.__name__ = f"detect_d{duration}"
    return detect


@dataclass(frozen=True)
class TimeSeriesGrid:
    """One granularity level of the §6.1 parameter sweep.

    The paper explores five explorables — masking windows ``W`` and
    thresholds ``T``, marking windows ``L``, magnitudes ``M``, and event
    durations ``D`` — at granularities yielding 16…1024 branches.  Only
    masking parameters fan out in the MDF (App. C Fig. 22); the marking /
    detection settings are fixed per run.
    """

    windows: Tuple[int, ...]
    thresholds: Tuple[float, ...]
    mark_window: int = 5
    mark_magnitude: float = 2.0
    duration: float = 2_000.0

    @property
    def num_branches(self) -> int:
        return len(self.windows) * len(self.thresholds)


def granularity_grid(num_branches: int) -> TimeSeriesGrid:
    """Build a W×T grid with (approximately) the requested branch count.

    Supported sizes are perfect grids: 16 (4×4), 64 (8×8), 256 (16×16),
    1024 (32×32) — matching the paper's 16…1024 sweep.
    """
    side = int(round(num_branches**0.5))
    if side * side != num_branches:
        raise ValueError(f"num_branches must be a perfect square, got {num_branches}")
    windows = tuple(range(2, 2 + side))
    thresholds = tuple(float(t) for t in np.geomspace(1.0001, 1.5, side))
    return TimeSeriesGrid(windows=windows, thresholds=thresholds)
