"""Ready-made MDFs for the paper's four evaluation workflows (App. C).

Each workload exposes two factories:

* ``*_mdf(...)`` — the meta-dataflow with its explore/choose structure
  (Figs. 3b/3c, 21, 22, 23 of the paper), and
* ``*_job(params, ...)`` — one *concrete* dataflow for a single parameter
  combination, which is what the sequential / k-parallel / Spark baselines
  submit repeatedly.

All sources take a ``nominal_bytes`` argument so benchmarks can dial in
paper-scale memory pressure independently of the in-process payload size.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.builder import MDFBuilder, Pipe
from ..core.evaluators import CallableEvaluator, RatioEvaluator
from ..core.mdf import MDF
from ..core.operators import Source
from ..core.selection import (
    KThreshold,
    Max,
    Min,
    SelectionFunction,
    Threshold,
    TopK,
)
from . import deeplearning as dl
from . import synthetic as syn
from .datagen import LabelledImages
from .kde import kde_fit_payload, loglik_of_payload, mise_of_payload, normal_pdf
from .outliers import sigma_filter
from .preprocess import preprocessor
from .timeseries import TimeSeriesGrid, detect_sequences, mark_events, mask_series

MB = 1024**2


# ----------------------------------------------------------------- profiling


def kde_mdf(
    values: np.ndarray,
    preprocess_methods: Sequence[str] = ("normalize", "standardize"),
    kernels: Sequence[str] = ("gaussian", "top-hat", "biweight", "triweight"),
    bandwidths: Sequence[float] = (0.1, 0.2, 0.3),
    nominal_bytes: int = 512 * MB,
    holdout_fraction: float = 0.01,
    seed: int = 5,
) -> MDF:
    """The data-profiling MDF (§6.1 job 3).

    Outer explore over the pre-processing method; inner explore over kernel
    × bandwidth.  The inner choose keeps the estimate with the best
    hold-out log-likelihood (1% of the data, as in the paper); the outer
    choose compares the two pre-processing winners the same way.
    """
    rng = np.random.default_rng(seed)
    n_holdout = max(8, int(len(values) * holdout_fraction))
    holdout = rng.choice(values, size=n_holdout, replace=False)
    loglik = CallableEvaluator(loglik_of_payload(holdout), name="holdout-loglik")

    b = MDFBuilder("kde-profiling")
    src = b.read(Source.from_data(values, name="read-sensor", nominal_bytes=nominal_bytes))

    def kernel_branch(pipe: Pipe, p: Dict[str, Any]) -> Pipe:
        return pipe.transform(
            kde_fit_payload(p["kernel"], p["bandwidth"]),
            name=f"kde-{p['_method']}-{p['kernel']}-{p['bandwidth']}",
            cost_factor=2.0,
            selectivity=0.002,
        )

    def preprocess_branch(pipe: Pipe, p: Dict[str, Any]) -> Pipe:
        prepped = pipe.transform(
            preprocessor(p["method"]), name=f"prep-{p['method']}", cost_factor=2.0
        )
        return prepped.explore(
            {
                "kernel": list(kernels),
                "bandwidth": list(bandwidths),
                "_method": [p["method"]],
            },
            kernel_branch,
            name=f"explore-kde-{p['method']}",
        ).choose(loglik, Max(), name=f"choose-kde-{p['method']}")

    result = src.explore(
        {"method": list(preprocess_methods)},
        preprocess_branch,
        name="explore-prep",
    ).choose(loglik, Max(), name="choose-prep")
    result.write(name="write-results")
    return b.build()


def kde_job(
    values: np.ndarray,
    params: Dict[str, Any],
    nominal_bytes: int = 512 * MB,
) -> MDF:
    """One concrete profiling job: preprocess → KDE fit → sink."""
    b = MDFBuilder(f"kde-job-{params['method']}-{params['kernel']}-{params['bandwidth']}")
    src = b.read(Source.from_data(values, name="read-sensor", nominal_bytes=nominal_bytes))
    (
        src.transform(preprocessor(params["method"]), name="prep", cost_factor=2.0)
        .transform(
            kde_fit_payload(params["kernel"], params["bandwidth"]),
            name="kde",
            cost_factor=2.0,
            selectivity=0.002,
        )
        .write(name="write-results")
    )
    return b.build()


def kde_combinations(
    preprocess_methods: Sequence[str] = ("normalize", "standardize"),
    kernels: Sequence[str] = ("gaussian", "top-hat", "biweight", "triweight"),
    bandwidths: Sequence[float] = (0.1, 0.2, 0.3),
) -> List[Dict[str, Any]]:
    """All parameter combinations the exploratory workflow covers."""
    return [
        {"method": m, "kernel": k, "bandwidth": h}
        for m in preprocess_methods
        for k in kernels
        for h in bandwidths
    ]


def kde_scoped_mdf(
    values: np.ndarray,
    outlier_thresholds: Sequence[float] = (1.5, 2.0, 2.5, 3.0),
    kernels: Sequence[str] = ("gaussian", "top-hat"),
    bandwidths: Sequence[float] = (0.2,),
    nominal_bytes: int = 512 * MB,
    min_surviving_ratio: float = 0.8,
    seed: int = 5,
) -> MDF:
    """The scoped KDE MDF of Fig. 3c (Example 3.5).

    An early choose closes the outlier-exploration scope: it keeps the
    first branch whose filter removed less than ``1 − min_surviving_ratio``
    of the data, pruning the remaining thresholds (the surviving-fraction
    evaluator is monotone in the threshold, and first-k selection is
    non-exhaustive — the strongest Table 1 row).
    """
    mu, sigma = float(np.mean(values)), float(np.std(values))
    mise = CallableEvaluator(mise_of_payload(normal_pdf(mu, sigma)), name="mise")
    ratio = RatioEvaluator(len(values), monotone=True, name="surviving-ratio")

    b = MDFBuilder("kde-scoped")
    src = b.read(Source.from_data(values, name="read-sample", nominal_bytes=nominal_bytes))
    filtered = src.explore(
        {"t": list(outlier_thresholds)},
        lambda pipe, p: pipe.transform(
            sigma_filter(p["t"]), name=f"outlier-{p['t']}", selectivity=0.9
        ),
        name="explore-outlier",
    ).choose(ratio, KThreshold(1, min_surviving_ratio), name="choose-outlier")
    estimated = filtered.explore(
        {"kernel": list(kernels), "bandwidth": list(bandwidths)},
        lambda pipe, p: pipe.transform(
            kde_fit_payload(p["kernel"], p["bandwidth"]),
            name=f"kde-{p['kernel']}-{p['bandwidth']}",
            cost_factor=2.0,
            selectivity=0.002,
        ),
        name="explore-kernel",
    ).choose(mise, Min(), name="choose-kernel")
    estimated.write(name="write-results")
    return b.build()


# --------------------------------------------------------------- time series


def time_series_mdf(
    trace: np.ndarray,
    grid: TimeSeriesGrid,
    selection: Optional[SelectionFunction] = None,
    evaluator: Optional[RatioEvaluator] = None,
    nominal_bytes: int = 256 * MB,
) -> MDF:
    """The time-series analysis MDF (§6.1 job 2, App. C Fig. 22).

    Explores masking windows × thresholds; the choose keeps branches whose
    surviving-point ratio passes the evaluator/selection given (default:
    ``Threshold(0.8)``), then marking and detection run on the kept data.
    """
    selection = selection or Threshold(0.8, above=True)
    evaluator = evaluator or RatioEvaluator(len(trace), name="surviving-ratio")

    b = MDFBuilder("time-series")
    src = b.read(Source.from_data(trace, name="read-trace", nominal_bytes=nominal_bytes))
    masked = src.explore(
        {"w": list(grid.windows), "t": list(grid.thresholds)},
        lambda pipe, p: pipe.transform(
            mask_series(p["w"], p["t"]),
            name=f"mask-w{p['w']}-t{p['t']:.4f}",
            selectivity=0.7,
            cost_factor=0.3,
        ),
        name="explore-mask",
    ).choose(evaluator, selection, name="choose-mask")
    (
        masked.transform(
            mark_events(grid.mark_window, grid.mark_magnitude),
            name="mark-events",
            selectivity=0.05,
            cost_factor=2.0,
        )
        .transform(
            detect_sequences(grid.duration),
            name="detect-seq",
            selectivity=0.2,
            cost_factor=1.0,
        )
        .write(name="write-results")
    )
    return b.build()


def time_series_job(
    trace: np.ndarray,
    params: Dict[str, Any],
    grid: TimeSeriesGrid,
    nominal_bytes: int = 256 * MB,
) -> MDF:
    """One concrete time-series job: mask → mark → detect → sink."""
    b = MDFBuilder(f"ts-job-w{params['w']}-t{params['t']:.4f}")
    src = b.read(Source.from_data(trace, name="read-trace", nominal_bytes=nominal_bytes))
    (
        src.transform(
            mask_series(params["w"], params["t"]),
            name="mask",
            selectivity=0.7,
            cost_factor=0.3,
        )
        .transform(
            mark_events(grid.mark_window, grid.mark_magnitude),
            name="mark-events",
            selectivity=0.05,
            cost_factor=2.0,
        )
        .transform(
            detect_sequences(grid.duration),
            name="detect-seq",
            selectivity=0.2,
            cost_factor=1.0,
        )
        .write(name="write-results")
    )
    return b.build()


def time_series_combinations(grid: TimeSeriesGrid) -> List[Dict[str, Any]]:
    return [{"w": w, "t": t} for w in grid.windows for t in grid.thresholds]


def time_series_full_mdf(
    trace: np.ndarray,
    grid: TimeSeriesGrid,
    mark_windows: Sequence[int] = (3, 5, 8),
    mark_magnitudes: Sequence[float] = (1.0, 2.0, 4.0),
    durations: Sequence[float] = (1_000.0, 2_000.0, 5_000.0),
    nominal_bytes: int = 256 * MB,
    mask_selection: Optional[SelectionFunction] = None,
    top_detections: int = 1,
) -> MDF:
    """Time-series job exploring *all five* §6.1 explorables.

    The paper's sweep covers masking windows ``W`` and thresholds ``T``,
    marking windows ``L`` and magnitudes ``M``, and event durations ``D``.
    This variant chains three scopes:

    1. explore W × T masks, keep maskings passing the surviving-ratio
       threshold (the Fig. 22 scope);
    2. explore L × M markings over the kept maskings, keep the marking
       with the most events (enough signal to analyse);
    3. explore D detections, keep the top-``top_detections`` by detected
       sequence count.

    Each later scope reuses the previous scope's surviving dataset once —
    the reuse structure the MDF model exists to exploit (R2).
    """
    mask_selection = mask_selection or Threshold(0.8, above=True)
    ratio = RatioEvaluator(len(trace), name="surviving-ratio")
    count_rows = CallableEvaluator(
        lambda rows: float(np.asarray(rows).shape[0]) if len(rows) else 0.0,
        name="row-count",
    )

    b = MDFBuilder("time-series-full")
    src = b.read(Source.from_data(trace, name="read-trace", nominal_bytes=nominal_bytes))
    masked = src.explore(
        {"w": list(grid.windows), "t": list(grid.thresholds)},
        lambda pipe, p: pipe.transform(
            mask_series(p["w"], p["t"]),
            name=f"mask-w{p['w']}-t{p['t']:.4f}",
            selectivity=0.7,
            cost_factor=0.3,
        ),
        name="explore-mask",
    ).choose(ratio, mask_selection, name="choose-mask")
    marked = masked.explore(
        {"l": list(mark_windows), "m": list(mark_magnitudes)},
        lambda pipe, p: pipe.transform(
            mark_events(p["l"], p["m"]),
            name=f"mark-l{p['l']}-m{p['m']}",
            selectivity=0.05,
            cost_factor=2.0,
        ),
        name="explore-mark",
    ).choose(count_rows, Max(), name="choose-mark")
    detected = marked.explore(
        {"d": list(durations)},
        lambda pipe, p: pipe.transform(
            detect_sequences(p["d"]),
            name=f"detect-d{p['d']:.0f}",
            selectivity=0.2,
            cost_factor=1.0,
        ),
        name="explore-detect",
    ).choose(count_rows, TopK(top_detections), name="choose-detect")
    detected.write(name="write-results")
    return b.build()


# ------------------------------------------------------------- deep learning


def _dl_evaluator() -> CallableEvaluator:
    return CallableEvaluator(dl.accuracy_of_payload, name="val-accuracy")


def _train_cost(nominal_bytes: int, epochs: int) -> float:
    """Compute cost of one training branch (epochs × full-data passes).

    Training cost is dominated by the data volume streamed through the
    model, independent of the (tiny) dataset a branch receives as input,
    so it is charged as a fixed cost per training operator."""
    return float(nominal_bytes) * epochs * 3.0


def deep_learning_mdf(
    data: LabelledImages,
    mode: str = "exhaustive",
    trainer: Optional[dl.MLPTrainer] = None,
    inits: Sequence[str] = tuple(dl.INIT_STRATEGIES),
    rates: Sequence[float] = dl.LEARNING_RATES,
    momenta: Sequence[float] = dl.MOMENTA,
    nominal_bytes: int = 512 * MB,
    holdout_fraction: float = 0.2,
    default_rate: float = 0.005,
    default_momentum: float = 0.5,
) -> MDF:
    """The deep-learning MDF (§6.1 job 1, App. C Fig. 21).

    Modes mirror the Fig. 5 bar groups:

    * ``"weights_only"`` — explore the |W| initialisation strategies;
    * ``"hyper_only"`` — explore |R × M| learning-rate/momentum pairs;
    * ``"exhaustive"`` — explore |W × R × M| combinations at once;
    * ``"early_choose"`` — explore |W| first, keep the best by validation
      accuracy, then explore |R × M| starting from that winner
      (|W| + |R × M| paths instead of |W × R × M|).
    """
    trainer = trainer or dl.MLPTrainer()
    train_set, val_set = data.split(holdout_fraction, seed=1)
    evaluator = _dl_evaluator()
    cost = _train_cost(nominal_bytes, trainer.epochs)

    b = MDFBuilder(f"deep-learning-{mode}")
    src = b.read(Source.from_data(train_set, name="read-cifar", nominal_bytes=nominal_bytes))
    prepped = src.transform(
        dl.preprocess_images, name="preprocess", cost_factor=4.0
    )

    def train_branch(pipe: Pipe, p: Dict[str, Any]) -> Pipe:
        # "from-winner": early-choose second stage, init comes from the
        # winning model of the first explore at run time
        init = p.get("init", "from-winner")
        rate = p.get("rate", default_rate)
        momentum = p.get("momentum", default_momentum)
        return pipe.aggregate(
            _training_fn(trainer, val_set, init, rate, momentum),
            name=f"train-{init}-r{rate}-m{momentum}",
            fixed_cost=cost,
            cost_factor=0.0,
            selectivity=0.0005,
        )

    def _training_fn(trainer, val_set, init, rate, momentum):
        def train(payload):
            if isinstance(payload, LabelledImages):
                _shared_prepped[0] = payload
                model = trainer.train(payload, val_set, init, rate, momentum)
            else:
                # early-choose second stage: the input is the winning model;
                # reuse its init and retrain on the (host-shared) data
                models = [m for m in payload if isinstance(m, dl.TrainedModel)]
                chosen_init = models[0].init
                model = trainer.train(
                    _shared_prepped[0], val_set, chosen_init, rate, momentum
                )
            return [model]

        train.__name__ = f"train_{init}_{rate}_{momentum}"
        return train

    _shared_prepped: List[Any] = [train_set]

    if mode == "weights_only":
        chosen = prepped.explore(
            {"init": list(inits)}, train_branch, name="explore-weights"
        ).choose(evaluator, TopK(1), name="choose-weights")
    elif mode == "hyper_only":
        chosen = prepped.explore(
            {"rate": list(rates), "momentum": list(momenta), "init": [inits[0]]},
            train_branch,
            name="explore-hyper",
        ).choose(evaluator, TopK(1), name="choose-hyper")
    elif mode == "exhaustive":
        chosen = prepped.explore(
            {"init": list(inits), "rate": list(rates), "momentum": list(momenta)},
            train_branch,
            name="explore-all",
        ).choose(evaluator, TopK(1), name="choose-all")
    elif mode == "early_choose":
        winners = prepped.explore(
            {"init": list(inits)}, train_branch, name="explore-weights"
        ).choose(evaluator, TopK(1), name="choose-weights")
        chosen = winners.explore(
            {"rate": list(rates), "momentum": list(momenta)},
            train_branch,
            name="explore-hyper",
        ).choose(evaluator, TopK(1), name="choose-hyper")
    else:
        raise ValueError(f"unknown mode {mode!r}")
    chosen.write(name="write-model")
    return b.build()


def deep_learning_job(
    data: LabelledImages,
    params: Dict[str, Any],
    trainer: Optional[dl.MLPTrainer] = None,
    nominal_bytes: int = 512 * MB,
    holdout_fraction: float = 0.2,
) -> MDF:
    """One concrete training job: preprocess → train(one config) → sink."""
    trainer = trainer or dl.MLPTrainer()
    train_set, val_set = data.split(holdout_fraction, seed=1)
    cost = _train_cost(nominal_bytes, trainer.epochs)

    def train(payload):
        model = trainer.train(
            payload, val_set, params["init"], params["rate"], params["momentum"]
        )
        return [model]

    b = MDFBuilder("dl-job")
    src = b.read(Source.from_data(train_set, name="read-cifar", nominal_bytes=nominal_bytes))
    (
        src.transform(dl.preprocess_images, name="preprocess", cost_factor=4.0)
        .aggregate(
            train,
            name="train",
            fixed_cost=cost,
            cost_factor=0.0,
            selectivity=0.0005,
        )
        .write(name="write-model")
    )
    return b.build()


def deep_learning_combinations(
    mode: str,
    inits: Sequence[str] = tuple(dl.INIT_STRATEGIES),
    rates: Sequence[float] = dl.LEARNING_RATES,
    momenta: Sequence[float] = dl.MOMENTA,
    default_rate: float = 0.005,
    default_momentum: float = 0.5,
) -> List[Dict[str, Any]]:
    """Parameter combinations a baseline must submit as separate jobs.

    For ``early_choose`` the baseline cannot exploit the pattern — it still
    has to explore the full cross product, which is exactly the gap Fig. 5
    shows."""
    if mode == "weights_only":
        return [
            {"init": i, "rate": default_rate, "momentum": default_momentum}
            for i in inits
        ]
    if mode == "hyper_only":
        return [
            {"init": inits[0], "rate": r, "momentum": m} for r in rates for m in momenta
        ]
    if mode in ("exhaustive", "early_choose"):
        return [
            {"init": i, "rate": r, "momentum": m}
            for i in inits
            for r in rates
            for m in momenta
        ]
    raise ValueError(f"unknown mode {mode!r}")


# ------------------------------------------------------------------ synthetic


def synthetic_mdf(
    pairs: List[Tuple[str, int]],
    b1: int = 4,
    b2: int = 4,
    work: int = 1,
    nominal_bytes: int = 256 * MB,
    op_selectivity: float = 0.85,
) -> MDF:
    """The synthetic nested-explore MDF (§6.1 job 4, App. C Fig. 23)."""
    outer = syn.multipliers(b1)
    inner = syn.multipliers(b2)
    evaluator = CallableEvaluator(syn.int_value, name="int-value")

    b = MDFBuilder(f"synthetic-{b1}x{b2}")
    src = b.read(Source.from_data(pairs, name="read-pairs", nominal_bytes=nominal_bytes))

    def inner_branch(pipe: Pipe, p: Dict[str, Any]) -> Pipe:
        return pipe.transform(
            syn.math_op(p["w2"], work), name=f"op-w2-{p['w2']}-{p['_outer']}",
            cost_factor=float(work),
            selectivity=op_selectivity,
        )

    def outer_branch(pipe: Pipe, p: Dict[str, Any]) -> Pipe:
        first = pipe.transform(
            syn.math_op(p["w1"], work), name=f"op-w1-{p['w1']}",
            cost_factor=float(work),
            selectivity=op_selectivity,
        )
        return first.explore(
            {"w2": list(inner), "_outer": [p["w1"]]},
            inner_branch,
            name=f"explore-inner-{p['w1']}",
        ).choose(evaluator, Max(), name=f"choose-inner-{p['w1']}")

    result = src.explore(
        {"w1": list(outer)}, outer_branch, name="explore-outer"
    ).choose(evaluator, Max(), name="choose-outer")
    result.write(name="write-results")
    return b.build()


def synthetic_job(
    pairs: List[Tuple[str, int]],
    params: Dict[str, Any],
    work: int = 1,
    nominal_bytes: int = 256 * MB,
    op_selectivity: float = 0.85,
) -> MDF:
    """One concrete synthetic job: op(w1) → op(w2) → sink."""
    b = MDFBuilder(f"syn-job-{params['w1']}-{params['w2']}")
    src = b.read(Source.from_data(pairs, name="read-pairs", nominal_bytes=nominal_bytes))
    (
        src.transform(
            syn.math_op(params["w1"], work),
            name="op-w1",
            cost_factor=float(work),
            selectivity=op_selectivity,
        )
        .transform(
            syn.math_op(params["w2"], work),
            name="op-w2",
            cost_factor=float(work),
            selectivity=op_selectivity,
        )
        .write(name="write-results")
    )
    return b.build()


def synthetic_combinations(b1: int = 4, b2: int = 4) -> List[Dict[str, Any]]:
    return [
        {"w1": w1, "w2": w2}
        for w1 in syn.multipliers(b1)
        for w2 in syn.multipliers(b2)
    ]
