"""Data pre-processing operators (normalisation / standardisation, §6.1).

The data-profiling MDF explores the pre-processing method itself: min-max
normalisation to [0, 1] versus z-score standardisation.  Both are linear
scans over the whole dataset — cheap per byte, but with cost growing in
the input size, which is exactly why reusing their output across explored
kernel configurations matters (Fig. 6)."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np


def normalize(payload) -> np.ndarray:
    """Min-max normalisation to [0, 1] (degenerate ranges map to 0)."""
    data = np.asarray(payload, dtype=np.float64)
    if data.size == 0:
        return data
    low, high = float(data.min()), float(data.max())
    if high == low:
        return np.zeros_like(data)
    return (data - low) / (high - low)


def standardize(payload) -> np.ndarray:
    """Z-score standardisation (zero mean, unit variance)."""
    data = np.asarray(payload, dtype=np.float64)
    if data.size == 0:
        return data
    sigma = float(data.std())
    if sigma == 0.0:
        return data - data.mean()
    return (data - data.mean()) / sigma


PREPROCESSORS: Dict[str, Callable] = {
    "normalize": normalize,
    "standardize": standardize,
}


def preprocessor(name: str) -> Callable:
    try:
        return PREPROCESSORS[name]
    except KeyError:
        raise ValueError(
            f"unknown preprocessor {name!r}; options: {sorted(PREPROCESSORS)}"
        ) from None
