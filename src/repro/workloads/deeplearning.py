"""Deep-learning job: a numpy multi-layer network (§6.1, App. C Fig. 21).

The exploratory workflow trains an image classifier and explores

* eight weight-initialisation strategies ``W`` (Gaussian / uniform
  families, matching the paper's "eight weight initialisation strategies
  based on either Gaussian or uniform distributions"),
* four learning rates ``R = {0.0001, 0.001, 0.005, 0.01}``, and
* four momentum values ``M = {0.25, 0.5, 0.75, 0.9}``,

for ``|W × R × M| = 128`` exhaustive paths, or ``|W| + |R × M| = 24``
paths with the early-choose pattern (explore inits first, keep the best,
then explore hyper-parameters).

The network is a one-hidden-layer MLP with ReLU and softmax trained by
mini-batch SGD with momentum — small enough to train for real inside the
simulation, expressive enough that inits and hyper-parameters genuinely
move validation accuracy (so choose selects meaningfully).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .datagen import LabelledImages

#: the paper's hyper-parameter domains
LEARNING_RATES: Tuple[float, ...] = (0.0001, 0.001, 0.005, 0.01)
MOMENTA: Tuple[float, ...] = (0.25, 0.5, 0.75, 0.9)

#: eight weight-initialisation strategies (name -> (family, scale))
INIT_STRATEGIES: Dict[str, Tuple[str, float]] = {
    "gaussian-0.01": ("gaussian", 0.01),
    "gaussian-0.05": ("gaussian", 0.05),
    "gaussian-0.1": ("gaussian", 0.1),
    "gaussian-0.5": ("gaussian", 0.5),
    "uniform-0.05": ("uniform", 0.05),
    "uniform-0.1": ("uniform", 0.1),
    "uniform-0.5": ("uniform", 0.5),
    "uniform-1.0": ("uniform", 1.0),
}


def init_names() -> List[str]:
    return list(INIT_STRATEGIES)


def _init_matrix(shape: Tuple[int, int], strategy: str, rng: np.random.Generator) -> np.ndarray:
    family, scale = INIT_STRATEGIES[strategy]
    if family == "gaussian":
        return rng.normal(0.0, scale, size=shape)
    return rng.uniform(-scale, scale, size=shape)


@dataclass
class TrainedModel:
    """A trained MLP plus its validation accuracy (the branch payload)."""

    weights1: np.ndarray
    bias1: np.ndarray
    weights2: np.ndarray
    bias2: np.ndarray
    accuracy: float
    init: str
    learning_rate: float
    momentum: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        hidden = np.maximum(x @ self.weights1 + self.bias1, 0.0)
        logits = hidden @ self.weights2 + self.bias2
        return logits.argmax(axis=1)


class MLPTrainer:
    """One-hidden-layer softmax classifier trained with SGD + momentum."""

    def __init__(
        self,
        hidden: int = 32,
        num_classes: int = 10,
        epochs: int = 1,
        batch_size: int = 64,
        seed: int = 3,
    ):
        self.hidden = hidden
        self.num_classes = num_classes
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def train(
        self,
        train: LabelledImages,
        val: LabelledImages,
        init: str,
        learning_rate: float,
        momentum: float,
    ) -> TrainedModel:
        """Train for ``epochs`` epochs and measure validation accuracy.

        Mirrors the paper's protocol: "after an epoch of training, the
        classification accuracy is measured using validation images".
        """
        rng = np.random.default_rng(self.seed)
        d = train.x.shape[1]
        x = train.x / 255.0
        w1 = _init_matrix((d, self.hidden), init, rng)
        b1 = np.zeros(self.hidden)
        w2 = _init_matrix((self.hidden, self.num_classes), init, rng)
        b2 = np.zeros(self.num_classes)
        v_w1 = np.zeros_like(w1)
        v_b1 = np.zeros_like(b1)
        v_w2 = np.zeros_like(w2)
        v_b2 = np.zeros_like(b2)
        n = len(train)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb, yb = x[batch], train.y[batch]
                # forward
                pre = xb @ w1 + b1
                hid = np.maximum(pre, 0.0)
                logits = hid @ w2 + b2
                logits -= logits.max(axis=1, keepdims=True)
                exp = np.exp(logits)
                probs = exp / exp.sum(axis=1, keepdims=True)
                # backward (cross-entropy)
                grad_logits = probs
                grad_logits[np.arange(len(yb)), yb] -= 1.0
                grad_logits /= len(yb)
                g_w2 = hid.T @ grad_logits
                g_b2 = grad_logits.sum(axis=0)
                grad_hid = grad_logits @ w2.T
                grad_hid[pre <= 0.0] = 0.0
                g_w1 = xb.T @ grad_hid
                g_b1 = grad_hid.sum(axis=0)
                # SGD with momentum
                v_w1 = momentum * v_w1 - learning_rate * g_w1
                v_b1 = momentum * v_b1 - learning_rate * g_b1
                v_w2 = momentum * v_w2 - learning_rate * g_w2
                v_b2 = momentum * v_b2 - learning_rate * g_b2
                w1 += v_w1
                b1 += v_b1
                w2 += v_w2
                b2 += v_b2
        model = TrainedModel(w1, b1, w2, b2, 0.0, init, learning_rate, momentum)
        model.accuracy = float(
            np.mean(model.predict(val.x / 255.0) == val.y)
        )
        return model


def train_payload(
    trainer: MLPTrainer,
    val: LabelledImages,
    init: str,
    learning_rate: float,
    momentum: float,
    init_override: Optional[Callable[[], str]] = None,
) -> Callable:
    """Operator function: train a model on the (full) payload.

    Payload: :class:`LabelledImages` (the pre-processed training set) →
    a one-element list holding the :class:`TrainedModel`.
    ``init_override`` defers the init choice to run time, which lets the
    early-choose MDF feed the winning init of the first explore into the
    second explore's branches.
    """

    def train(payload) -> List[TrainedModel]:
        data = payload[0] if isinstance(payload, list) else payload
        chosen_init = init_override() if init_override is not None else init
        model = trainer.train(data, val, chosen_init, learning_rate, momentum)
        return [model]

    train.__name__ = f"train_{init}_{learning_rate}_{momentum}"
    return train


def accuracy_of_payload(payload) -> float:
    """Evaluator function: validation accuracy of a branch's model."""
    models = [m for m in payload if isinstance(m, TrainedModel)]
    if not models:
        return 0.0
    return float(np.mean([m.accuracy for m in models]))


def preprocess_images(payload):
    """Pre-processing operator: per-partition pixel standardisation.

    Payload: one :class:`LabelledImages` partition → a standardised copy
    (rescaled back into pixel range).  This is the expensive shared step
    the MDF executes once and every explored path reuses.
    """
    data = payload[0] if isinstance(payload, list) else payload
    x = data.x.astype(np.float32)
    mean = x.mean(axis=0, keepdims=True)
    std = x.std(axis=0, keepdims=True) + 1e-6
    return LabelledImages(((x - mean) / std) * 64.0 + 128.0, data.y)
