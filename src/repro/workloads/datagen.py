"""Synthetic dataset generators for the four evaluation workloads (§6).

Replaces data we cannot ship (see DESIGN.md §2):

* :func:`normal_values` — the data-profiling job's "100 million normally
  distributed random values" (scaled down, nominal sizes scaled up);
* :func:`oil_well_trace` — a stand-in for the proprietary oil-well sensor
  traces [18]: a baseline pressure regime with slow drift, injected
  outliers, and step events of varying magnitude;
* :func:`cifar_like` — a 10-class Gaussian-mixture image dataset with the
  CIFAR-10 shape, separable enough that hyper-parameters genuinely change
  validation accuracy (so choose decisions are meaningful);
* :func:`string_int_pairs` — the synthetic job's string/integer pairs.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def normal_values(
    n: int = 20_000, mu: float = 0.0, sigma: float = 1.0, seed: int = 7
) -> np.ndarray:
    """Normally distributed sensor readings (data-profiling input)."""
    rng = np.random.default_rng(seed)
    return rng.normal(mu, sigma, size=n).astype(np.float64)


def oil_well_trace(
    n: int = 50_000,
    seed: int = 11,
    outlier_rate: float = 0.01,
    event_rate: float = 0.002,
) -> np.ndarray:
    """Synthetic oil-well pressure trace: baseline + drift + events + noise.

    Events are step changes of random magnitude and duration; outliers are
    isolated spikes.  The trace exercises exactly what the time-series job
    measures: masking aggressiveness vs. window/threshold choices.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    baseline = 100.0 + 5.0 * np.sin(2 * np.pi * t / max(n // 4, 1))
    drift = np.cumsum(rng.normal(0.0, 0.01, size=n))
    noise = rng.normal(0.0, 0.5, size=n)
    series = baseline + drift + noise
    # step events
    num_events = max(1, int(n * event_rate))
    starts = rng.integers(0, max(n - 100, 1), size=num_events)
    for start in starts:
        duration = int(rng.integers(20, 200))
        magnitude = float(rng.normal(0.0, 8.0))
        series[start : start + duration] += magnitude
    # isolated outlier spikes
    num_outliers = max(1, int(n * outlier_rate))
    positions = rng.integers(0, n, size=num_outliers)
    series[positions] += rng.normal(0.0, 40.0, size=num_outliers)
    return series


@dataclass
class LabelledImages:
    """A supervised image dataset: ``x`` is (n, d) float32, ``y`` (n,) int."""

    x: np.ndarray
    y: np.ndarray

    def __len__(self) -> int:
        return len(self.y)

    def split(self, holdout_fraction: float, seed: int = 0) -> Tuple["LabelledImages", "LabelledImages"]:
        """Deterministic train/validation split."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.y))
        cut = int(len(self.y) * (1.0 - holdout_fraction))
        train, val = order[:cut], order[cut:]
        return (
            LabelledImages(self.x[train], self.y[train]),
            LabelledImages(self.x[val], self.y[val]),
        )

    # ---- repro partitioning protocol (see repro.core.datasets) ----
    def split_into(self, num_partitions: int) -> List["LabelledImages"]:
        """Contiguous row-wise partitioning for the simulated cluster."""
        xs = np.array_split(self.x, num_partitions)
        ys = np.array_split(self.y, num_partitions)
        return [LabelledImages(x, y) for x, y in zip(xs, ys)]

    def concat_with(self, other: "LabelledImages") -> "LabelledImages":
        """Row-wise concatenation (dual of :meth:`split_into`)."""
        return LabelledImages(
            np.concatenate([self.x, other.x]), np.concatenate([self.y, other.y])
        )


def cifar_like(
    n_samples: int = 2_000,
    num_classes: int = 10,
    features: int = 3 * 32 * 32,
    seed: int = 17,
    class_separation: float = 2.0,
) -> LabelledImages:
    """CIFAR-10-shaped Gaussian-mixture data for the deep-learning job.

    Each class is an isotropic Gaussian around a random center; pixel
    intensities are clipped to [0, 255] like RGB data.  ``features``
    defaults to the CIFAR shape (3×32×32 = 3072) but can be reduced for
    faster benchmark iterations without changing the job's structure.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, class_separation, size=(num_classes, features))
    y = rng.integers(0, num_classes, size=n_samples)
    x = centers[y] + rng.normal(0.0, 1.0, size=(n_samples, features))
    x = np.clip((x + 8.0) * 16.0, 0.0, 255.0).astype(np.float32)
    return LabelledImages(x, y.astype(np.int64))


def string_int_pairs(n: int = 10_000, seed: int = 23) -> List[Tuple[str, int]]:
    """String/integer pairs processed by the synthetic job (App. C)."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1_000_000, size=n)
    return [(f"key-{i % 977}", int(v)) for i, v in enumerate(values)]
