"""Kernel density estimation (the data-profiling job, §2.2 and §6.1).

Implements the estimator ``g(x) = 1/(n·h) Σ K((x − x_i)/h)`` with the
kernel functions the paper explores (Gaussian, top-hat, linear, cosine,
Epanechnikov, biweight, triweight) plus the two quality measures it uses:

* MISE — the mean integrated squared error against a known true density
  (the running example's evaluator, Fig. 3); MISE is *convex* over the
  ordered bandwidth domain, which is what enables the Table 1 pruning;
* held-out log-likelihood — §6's evaluator: the log of the estimated pdf
  summed over a hold-out sample.

Estimates are represented on a fixed evaluation grid so branch outputs are
small, concatenable datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

#: kernel name -> K(u), defined for |u| <= 1 except gaussian (all u)
KERNELS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "gaussian": lambda u: np.exp(-0.5 * u * u) / np.sqrt(2 * np.pi),
    "top-hat": lambda u: 0.5 * (np.abs(u) <= 1.0),
    "linear": lambda u: np.clip(1.0 - np.abs(u), 0.0, None),
    "cosine": lambda u: (np.pi / 4.0) * np.cos(np.pi * u / 2.0) * (np.abs(u) <= 1.0),
    "epanechnikov": lambda u: 0.75 * np.clip(1.0 - u * u, 0.0, None),
    "biweight": lambda u: (15.0 / 16.0) * np.clip(1.0 - u * u, 0.0, None) ** 2,
    "triweight": lambda u: (35.0 / 32.0) * np.clip(1.0 - u * u, 0.0, None) ** 3,
}


def kernel_names() -> List[str]:
    return list(KERNELS)


@dataclass
class DensityEstimate:
    """A KDE result evaluated on a regular grid."""

    grid: np.ndarray
    density: np.ndarray
    kernel: str
    bandwidth: float
    sample_size: int

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Interpolate the gridded density at arbitrary points."""
        return np.interp(x, self.grid, self.density, left=0.0, right=0.0)

    def log_likelihood(self, holdout: np.ndarray, floor: float = 1e-12) -> float:
        """Mean log pdf over a hold-out sample (higher is better)."""
        values = np.maximum(self.pdf(np.asarray(holdout)), floor)
        return float(np.mean(np.log(values)))

    def mise(self, true_pdf: Callable[[np.ndarray], np.ndarray]) -> float:
        """Integrated squared error against a known density (lower is better)."""
        diff = self.density - true_pdf(self.grid)
        dx = float(self.grid[1] - self.grid[0]) if len(self.grid) > 1 else 1.0
        return float(np.sum(diff * diff) * dx)


class KernelDensityEstimator:
    """Fits :class:`DensityEstimate` objects on numeric samples."""

    def __init__(
        self,
        kernel: str = "gaussian",
        bandwidth: float = 0.2,
        grid_points: int = 256,
        max_fit_sample: int = 4_000,
        seed: int = 0,
    ):
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; options: {sorted(KERNELS)}")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.kernel = kernel
        self.bandwidth = bandwidth
        self.grid_points = grid_points
        self.max_fit_sample = max_fit_sample
        self.seed = seed

    def fit(self, data: np.ndarray, grid: Optional[np.ndarray] = None) -> DensityEstimate:
        """Estimate the density of ``data`` on a regular grid.

        Large samples are subsampled deterministically (the estimator is a
        Monte-Carlo approximation either way); the grid defaults to the
        sample range padded by three bandwidths.
        """
        data = np.asarray(data, dtype=np.float64).ravel()
        if data.size == 0:
            grid = grid if grid is not None else np.linspace(-1, 1, self.grid_points)
            return DensityEstimate(grid, np.zeros_like(grid), self.kernel, self.bandwidth, 0)
        if data.size > self.max_fit_sample:
            rng = np.random.default_rng(self.seed)
            data = rng.choice(data, size=self.max_fit_sample, replace=False)
        if grid is None:
            pad = 3.0 * self.bandwidth
            grid = np.linspace(data.min() - pad, data.max() + pad, self.grid_points)
        kernel_fn = KERNELS[self.kernel]
        # (grid, sample) pairwise evaluation, chunked to bound memory
        density = np.zeros_like(grid)
        h = self.bandwidth
        chunk = 1_000
        for start in range(0, data.size, chunk):
            block = data[start : start + chunk]
            u = (grid[:, None] - block[None, :]) / h
            density += kernel_fn(u).sum(axis=1)
        density /= data.size * h
        return DensityEstimate(grid, density, self.kernel, self.bandwidth, int(data.size))


def normal_pdf(mu: float = 0.0, sigma: float = 1.0) -> Callable[[np.ndarray], np.ndarray]:
    """The true density of the synthetic profiling dataset."""

    def pdf(x: np.ndarray) -> np.ndarray:
        z = (np.asarray(x) - mu) / sigma
        return np.exp(-0.5 * z * z) / (sigma * np.sqrt(2 * np.pi))

    return pdf


# ------------------------------------------------------- dataflow adapters


def kde_fit_payload(kernel: str, bandwidth: float, grid_points: int = 256):
    """Operator function: fit a KDE on a (full) payload of values."""

    estimator = KernelDensityEstimator(kernel, bandwidth, grid_points=grid_points)

    def fit(payload) -> List[DensityEstimate]:
        return [estimator.fit(np.asarray(payload, dtype=np.float64))]

    fit.__name__ = f"kde_{kernel}_{bandwidth}"
    return fit


def mise_of_payload(true_pdf: Callable[[np.ndarray], np.ndarray]):
    """Evaluator function: MISE of a branch's estimate list (averaged)."""

    def mise(payload) -> float:
        estimates = [e for e in payload if isinstance(e, DensityEstimate)]
        if not estimates:
            return float("inf")
        return float(np.mean([e.mise(true_pdf) for e in estimates]))

    return mise


def loglik_of_payload(holdout: np.ndarray):
    """Evaluator function: hold-out log-likelihood of a branch's estimate."""

    holdout = np.asarray(holdout, dtype=np.float64)

    def loglik(payload) -> float:
        estimates = [e for e in payload if isinstance(e, DensityEstimate)]
        if not estimates:
            return float("-inf")
        return float(np.mean([e.log_likelihood(holdout) for e in estimates]))

    return loglik
