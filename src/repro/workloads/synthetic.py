"""Synthetic job: string/integer pairs with nested explores (App. C Fig. 23).

The job offers full control over branch structure and computational cost:
two nested explores ``B1`` (outer) and ``B2`` (inner) each apply an
algebraic operation to the integer of every tuple, repeated ``work`` times
per item to tune the processing cost.  The choose at each level keeps the
branch with the maximum integer sum — matching ``CHOOSE(int_value(...),
max)`` in the paper's listing.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

Pair = Tuple[str, int]

#: the multiplier domain from the paper's listing: seq(10, 100, 1000, 10000)
DEFAULT_MULTIPLIERS: Tuple[int, ...] = (10, 100, 1000, 10000)

_PRIME = 1_000_003


def math_op(multiplier: int, work: int = 1) -> Callable[[List[Pair]], List[Pair]]:
    """The ``Math.op`` operator: update each tuple's integer value.

    Applies ``v ← (v · multiplier + 7) mod P`` ``work`` times per item —
    the knob §6.4 turns to make branches compute-bound.
    """
    if work < 1:
        raise ValueError("work must be >= 1")

    def op(payload: List[Pair]) -> List[Pair]:
        out: List[Pair] = []
        for key, value in payload:
            v = value
            for _ in range(work):
                v = (v * multiplier + 7) % _PRIME
            out.append((key, v))
        return out

    op.__name__ = f"math_op_x{multiplier}_w{work}"
    return op


def int_value(payload: List[Pair]) -> float:
    """Evaluator function: sum of the integer values of a branch result."""
    return float(sum(value for _, value in payload))


def multipliers(count: int) -> List[int]:
    """A branching-factor-``count`` multiplier domain.

    Extends the paper's ``seq(10, 100, 1000, 10000)`` geometrically when
    the experiment needs more branches (Figs. 9 and 12 sweep branching
    factors well beyond 4), and truncates it for fewer.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    base = list(DEFAULT_MULTIPLIERS)
    while len(base) < count:
        base.append(base[-1] * 2 + len(base))
    return base[:count]
