"""The lineage-fingerprint result cache (entries, tiers, lifecycle).

The cache maps a stage-output fingerprint (:mod:`repro.cache.fingerprint`)
to the *location* of bytes that stage already produced.  It has two tiers:

* **cluster tier** — the entry points at partition slots living on the
  simulated cluster as ordinary data: the node-store keys the output was
  registered under.  A hit is served by reading those partitions through
  the normal ``load_partition`` path, so it is charged memory- or
  disk-read cost by residency, it refreshes LRU/AMM recency, and the
  entries are evicted/demoted under the same ``pre(d)`` accounting as
  everything else (§4).  The cache holds **no payload references** in this
  tier — if the backing dataset is discarded the entry dies, it cannot pin
  memory.
* **store tier** (optional) — a :class:`DiskCacheStore` directory of
  pickled payloads that survives ``cluster.reset()`` and process restarts,
  for warm exploratory re-runs.  Hits are charged disk-read cost.

Entries never carry payloads, only fingerprints, dataset ids, node-store
keys and nominal sizes; validity is re-checked against the live cluster at
every lookup (``cluster.key_available``).  A recovered (recomputed)
partition restores the same key with byte-identical content, so its entry
*refreshes* for free; a discarded or failure-lost partition leaves the
entry unbacked and it is invalidated — eagerly by
:meth:`ResultCache.invalidate_dataset`/:meth:`ResultCache.revalidate`,
lazily at the next lookup.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["CacheEntry", "CacheHit", "CacheStats", "DiskCacheStore", "ResultCache"]


@dataclass
class CacheEntry:
    """Cluster-tier entry: where a fingerprint's bytes live right now."""

    fingerprint: str
    dataset_id: str
    #: node-store keys of the partitions at admission time, in index order
    keys: List[Tuple[str, int]]
    partition_bytes: List[int]
    producer: Optional[str]

    @property
    def total_bytes(self) -> int:
        return sum(self.partition_bytes)


@dataclass
class CacheHit:
    """A resolved lookup the executor can serve a stage from."""

    tier: str  # "cluster" | "store"
    fingerprint: str
    partition_bytes: List[int]
    producer: Optional[str]
    #: cluster tier: (live owning dataset id, partition position) per index
    locations: Optional[List[Tuple[str, int]]] = None
    #: store tier: the unpickled payloads per index
    payloads: Optional[List[Any]] = None

    @property
    def total_bytes(self) -> int:
        return sum(self.partition_bytes)

    @property
    def num_partitions(self) -> int:
        return len(self.partition_bytes)


@dataclass
class CacheStats:
    """Process-level counters (survive ``cluster.reset()``, feed BENCH)."""

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    invalidations: int = 0
    bytes_saved: int = 0
    compute_seconds_saved: float = 0.0
    store_hits: int = 0
    store_writes: int = 0
    unpicklable_skipped: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "invalidations": self.invalidations,
            "bytes_saved": self.bytes_saved,
            "compute_seconds_saved": self.compute_seconds_saved,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "unpicklable_skipped": self.unpicklable_skipped,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DiskCacheStore:
    """On-disk tier: one pickle file per fingerprint under ``path``.

    Writes are best-effort (an unpicklable payload skips persistence and
    the entry stays cluster-tier only) and are *not* charged to the
    simulated clock — the store stands in for the shared artifact storage
    an exploratory platform writes behind the scenes, and charging it
    would perturb the cost-model comparisons the benchmarks assert on.
    """

    def __init__(self, path: str):
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)
        #: fingerprint -> loaded blob; repeated hits on the same entry
        #: skip the unpickle.  Consumers must treat served payloads as
        #: immutable cache property (the executor copies on serve).
        self._loaded: Dict[str, Tuple[List[Any], List[int], Optional[str]]] = {}

    def _file(self, fingerprint: str) -> str:
        return os.path.join(self.path, f"{fingerprint}.pkl")

    def contains(self, fingerprint: str) -> bool:
        return os.path.exists(self._file(fingerprint))

    def save(
        self,
        fingerprint: str,
        payloads: List[Any],
        partition_bytes: List[int],
        producer: Optional[str],
    ) -> bool:
        blob = {
            "payloads": payloads,
            "partition_bytes": list(partition_bytes),
            "producer": producer,
        }
        tmp = self._file(fingerprint) + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(blob, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._file(fingerprint))
            self._loaded.pop(fingerprint, None)  # refreshed on next load
            return True
        except Exception:  # noqa: BLE001 - unpicklable payloads skip the tier
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False

    def load(
        self, fingerprint: str
    ) -> Optional[Tuple[List[Any], List[int], Optional[str]]]:
        memo = self._loaded.get(fingerprint)
        if memo is not None:
            return memo
        try:
            with open(self._file(fingerprint), "rb") as fh:
                blob = pickle.load(fh)
            loaded = (
                blob["payloads"],
                blob["partition_bytes"],
                blob["producer"],
            )
            self._loaded[fingerprint] = loaded
            return loaded
        except Exception:  # noqa: BLE001 - corrupt/missing file = miss
            return None

    def clear(self) -> None:
        self._loaded.clear()
        for name in os.listdir(self.path):
            if name.endswith(".pkl"):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.path) if n.endswith(".pkl"))


class ResultCache:
    """Fingerprint → cached stage output, shared across ``run_mdf`` calls.

    Pass one instance via ``EngineConfig(cache=ResultCache(...))``; reusing
    the same instance (and, for the cluster tier, ``run_mdf(...,
    reset=False)`` so prior outputs stay registered) is what makes warm
    re-runs hit.

    ``cost_based=True`` (default) makes the executor serve a hit only when
    the modelled read cost beats the modelled recompute cost — under the
    paper's cost model a disk-resident entry can be *slower* than
    recomputing a cheap operator (disk reads 200 MB/s vs 500 MB/s compute),
    and a cache that slows the job down is worse than no cache.
    """

    def __init__(
        self,
        store: Optional[DiskCacheStore] = None,
        cost_based: bool = True,
    ):
        self.store = store
        self.cost_based = bool(cost_based)
        self.stats = CacheStats()
        self._entries: Dict[str, CacheEntry] = {}
        self._by_dataset: Dict[str, Set[str]] = {}

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, fingerprint: str) -> Optional[CacheEntry]:
        return self._entries.get(fingerprint)

    def lookup(self, fingerprint: str, cluster) -> Optional[CacheHit]:
        """Resolve a fingerprint to readable bytes, or ``None`` (miss).

        Cluster-tier entries are validated key by key against the live
        cluster; an unbacked entry is invalidated here (lazy path) before
        falling through to the store tier.
        """
        entry = self._entries.get(fingerprint)
        if entry is not None:
            locations = self._resolve(entry, cluster)
            if locations is not None:
                return CacheHit(
                    tier="cluster",
                    fingerprint=fingerprint,
                    partition_bytes=list(entry.partition_bytes),
                    producer=entry.producer,
                    locations=locations,
                )
            self._drop(fingerprint, cluster, reason="backing-lost")
        if self.store is not None and self.store.contains(fingerprint):
            loaded = self.store.load(fingerprint)
            if loaded is not None:
                payloads, partition_bytes, producer = loaded
                return CacheHit(
                    tier="store",
                    fingerprint=fingerprint,
                    partition_bytes=list(partition_bytes),
                    producer=producer,
                    payloads=payloads,
                )
        return None

    def _resolve(
        self, entry: CacheEntry, cluster
    ) -> Optional[List[Tuple[str, int]]]:
        """Map every entry key to its live owning dataset, or ``None``.

        A key's owner may no longer be the admitting dataset: a choose can
        absorb branch tails into a composite (``register_composite`` pops
        the member records).  Reads must go to the live owner so the R3
        no-use-after-discard invariant keeps holding on cache hits.
        """
        locations: List[Tuple[str, int]] = []
        for key in entry.keys:
            owner = cluster.key_available(key)
            if owner is None:
                return None
            locations.append(owner)
        return locations

    # ------------------------------------------------------------ lifecycle
    def admit(self, fingerprint: str, dataset, cluster) -> None:
        """Remember a freshly materialised stage output.

        ``dataset`` must already be registered on ``cluster`` — the entry
        records the node-store keys of its partitions, not the payloads.
        """
        record = cluster.record(dataset.id)
        entry = CacheEntry(
            fingerprint=fingerprint,
            dataset_id=dataset.id,
            keys=list(record.partition_keys),
            partition_bytes=list(record.partition_bytes),
            producer=record.producer,
        )
        previous = self._entries.get(fingerprint)
        if previous is not None:
            members = self._by_dataset.get(previous.dataset_id)
            if members is not None:
                members.discard(fingerprint)
                if not members:
                    self._by_dataset.pop(previous.dataset_id, None)
        self._entries[fingerprint] = entry
        self._by_dataset.setdefault(dataset.id, set()).add(fingerprint)
        tier = "cluster"
        if self.store is not None and not self.store.contains(fingerprint):
            persisted = self.store.save(
                fingerprint,
                [p.data for p in dataset.partitions],
                entry.partition_bytes,
                entry.producer,
            )
            if persisted:
                tier = "cluster+store"
                self.stats.store_writes += 1
            else:
                self.stats.unpicklable_skipped += 1
        elif self.store is not None:
            tier = "cluster+store"
        self.stats.admissions += 1
        cluster.obs.counter(
            "cache_admissions", dataset=dataset.id, policy=tier
        ).inc()
        cluster.trace.emit(
            "cache_admit",
            fingerprint=fingerprint,
            dataset=dataset.id,
            nbytes=entry.total_bytes,
            partitions=len(entry.keys),
            tier=tier,
        )

    def invalidate_dataset(self, dataset_id: str, cluster, reason: str) -> None:
        """Eagerly drop every entry admitted under a discarded dataset."""
        for fingerprint in sorted(self._by_dataset.get(dataset_id, ())):
            self._drop(fingerprint, cluster, reason=reason)

    def revalidate(self, cluster, reason: str) -> None:
        """Drop every entry whose backing partitions are no longer readable.

        Called after failure recovery: recomputed partitions were restored
        byte-identically under their original keys (their entries stay
        valid — the *refresh* path), while dropped-dead or discarded
        partitions leave entries unbacked — those die here.
        """
        for fingerprint in sorted(self._entries):
            entry = self._entries.get(fingerprint)
            if entry is not None and self._resolve(entry, cluster) is None:
                self._drop(fingerprint, cluster, reason=reason)

    def _drop(self, fingerprint: str, cluster, reason: str) -> None:
        entry = self._entries.pop(fingerprint, None)
        if entry is None:
            return
        members = self._by_dataset.get(entry.dataset_id)
        if members is not None:
            members.discard(fingerprint)
            if not members:
                self._by_dataset.pop(entry.dataset_id, None)
        self.stats.invalidations += 1
        cluster.obs.counter(
            "cache_invalidations", dataset=entry.dataset_id
        ).inc()
        cluster.trace.emit(
            "cache_invalidate",
            fingerprint=fingerprint,
            dataset=entry.dataset_id,
            reason=reason,
        )

    def clear(self) -> None:
        """Forget all cluster-tier entries (the disk store is untouched)."""
        self._entries.clear()
        self._by_dataset.clear()
