"""The lineage-fingerprint result cache (entries, tiers, lifecycle).

The cache maps a stage-output fingerprint (:mod:`repro.cache.fingerprint`)
to the *location* of bytes that stage already produced.  It has two tiers:

* **cluster tier** — the entry points at partition slots living on the
  simulated cluster as ordinary data: the node-store keys the output was
  registered under.  A hit is served by reading those partitions through
  the normal ``load_partition`` path, so it is charged memory- or
  disk-read cost by residency, it refreshes LRU/AMM recency, and the
  entries are evicted/demoted under the same ``pre(d)`` accounting as
  everything else (§4).  The cache holds **no payload references** in this
  tier — if the backing dataset is discarded the entry dies, it cannot pin
  memory.
* **store tier** (optional) — a :class:`DiskCacheStore` directory of
  pickled payloads that survives ``cluster.reset()`` and process restarts,
  for warm exploratory re-runs.  Hits are charged disk-read cost.

Entries never carry payloads, only fingerprints, dataset ids, node-store
keys and nominal sizes; validity is re-checked against the live cluster at
every lookup (``cluster.key_available``).  A recovered (recomputed)
partition restores the same key with byte-identical content, so its entry
*refreshes* for free; a discarded or failure-lost partition leaves the
entry unbacked and it is invalidated — eagerly by
:meth:`ResultCache.invalidate_dataset`/:meth:`ResultCache.revalidate`,
lazily at the next lookup.

:class:`SharedCacheStore` promotes the store tier to a **shared
cross-tenant tier** for the multi-tenant job service (:mod:`repro.
service`): many concurrent jobs — different processes, different tenants
— read and write one directory safely (cross-process write locking on
top of the per-writer-unique-tmp + ``os.replace`` atomicity),
single-flight leases deduplicate concurrent computation of the same
fingerprint, and per-tenant byte quotas bound each tenant's footprint
with oldest-first eviction.  See ``docs/service.md``.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "CacheEntry",
    "CacheHit",
    "CacheStats",
    "DiskCacheStore",
    "SharedCacheStore",
    "ResultCache",
]


@dataclass
class CacheEntry:
    """Cluster-tier entry: where a fingerprint's bytes live right now."""

    fingerprint: str
    dataset_id: str
    #: node-store keys of the partitions at admission time, in index order
    keys: List[Tuple[str, int]]
    partition_bytes: List[int]
    producer: Optional[str]

    @property
    def total_bytes(self) -> int:
        return sum(self.partition_bytes)


@dataclass
class CacheHit:
    """A resolved lookup the executor can serve a stage from."""

    tier: str  # "cluster" | "store"
    fingerprint: str
    partition_bytes: List[int]
    producer: Optional[str]
    #: cluster tier: (live owning dataset id, partition position) per index
    locations: Optional[List[Tuple[str, int]]] = None
    #: store tier: the unpickled payloads per index
    payloads: Optional[List[Any]] = None
    #: store tier under a :class:`SharedCacheStore`: the tenant whose run
    #: wrote the entry (None on the cluster tier / unlabelled stores).
    #: A hit whose owner differs from the reading cache's tenant is a
    #: *cross-tenant* hit — one user's explore warmed another's.
    owner_tenant: Optional[str] = None

    @property
    def total_bytes(self) -> int:
        return sum(self.partition_bytes)

    @property
    def num_partitions(self) -> int:
        return len(self.partition_bytes)


@dataclass
class CacheStats:
    """Process-level counters (survive ``cluster.reset()``, feed BENCH)."""

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    invalidations: int = 0
    bytes_saved: int = 0
    compute_seconds_saved: float = 0.0
    store_hits: int = 0
    store_writes: int = 0
    unpicklable_skipped: int = 0
    #: corrupt/truncated store entries detected (unlinked, served as miss)
    corrupt_entries: int = 0
    #: store hits whose entry was written by a *different* tenant
    cross_tenant_hits: int = 0
    #: store misses that were resolved by waiting out another job's
    #: in-flight computation of the same fingerprint (single-flight)
    singleflight_waits: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "invalidations": self.invalidations,
            "bytes_saved": self.bytes_saved,
            "compute_seconds_saved": self.compute_seconds_saved,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "unpicklable_skipped": self.unpicklable_skipped,
            "corrupt_entries": self.corrupt_entries,
            "cross_tenant_hits": self.cross_tenant_hits,
            "singleflight_waits": self.singleflight_waits,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DiskCacheStore:
    """On-disk tier: one pickle file per fingerprint under ``path``.

    Writes are best-effort (an unpicklable payload skips persistence and
    the entry stays cluster-tier only) and are *not* charged to the
    simulated clock — the store stands in for the shared artifact storage
    an exploratory platform writes behind the scenes, and charging it
    would perturb the cost-model comparisons the benchmarks assert on.

    Robustness contract: a truncated or otherwise corrupt entry file is
    never served and never raises — :meth:`load` unlinks it, counts it in
    :attr:`corrupt_entries` and reports a miss, so the run recomputes the
    stage through the normal path.  Writers dump into a per-pid temporary
    file and publish with an atomic ``os.replace``; stale ``*.tmp`` files
    left behind by a killed writer are swept when the store is opened
    (``tmp_sweep_age`` bounds how young a tmp may be and still be swept —
    keep it above zero when concurrent writers may be mid-publish).
    """

    def __init__(self, path: str, tmp_sweep_age: float = 0.0):
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)
        #: fingerprint -> loaded blob; repeated hits on the same entry
        #: skip the unpickle.  Consumers must treat served payloads as
        #: immutable cache property (the executor copies on serve).
        self._loaded: Dict[str, Tuple[List[Any], List[int], Optional[str]]] = {}
        #: corrupt entry files detected (and unlinked) by :meth:`load`
        self.corrupt_entries = 0
        #: stale tmp files swept at open (crashed writers' leftovers)
        self.tmps_swept = self._sweep_tmps(tmp_sweep_age)

    def obs_counters(self) -> Dict[str, int]:
        """Store-level counters the service observability plane exports
        (``service_store_*`` series; see :mod:`repro.service.obs`)."""
        return {
            "corrupt_entries": self.corrupt_entries,
            "tmps_swept": self.tmps_swept,
        }

    def _file(self, fingerprint: str) -> str:
        return os.path.join(self.path, f"{fingerprint}.pkl")

    def _sweep_tmps(self, min_age: float) -> int:
        """Remove ``*.tmp`` leftovers of killed writers (open-time sweep)."""
        swept = 0
        now = time.time()
        for name in os.listdir(self.path):
            if not name.endswith(".tmp"):
                continue
            full = os.path.join(self.path, name)
            try:
                if now - os.path.getmtime(full) >= min_age:
                    os.unlink(full)
                    swept += 1
            except OSError:
                pass
        return swept

    def contains(self, fingerprint: str) -> bool:
        return os.path.exists(self._file(fingerprint))

    def save(
        self,
        fingerprint: str,
        payloads: List[Any],
        partition_bytes: List[int],
        producer: Optional[str],
        tenant: Optional[str] = None,
    ) -> bool:
        blob = {
            "payloads": payloads,
            "partition_bytes": list(partition_bytes),
            "producer": producer,
        }
        # per-pid tmp name: two processes publishing the same fingerprint
        # never interleave writes into one file (each replace is atomic)
        tmp = f"{self._file(fingerprint)}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(blob, fh, protocol=pickle.HIGHEST_PROTOCOL)
            self._publish(fingerprint, tmp, tenant)
            self._loaded.pop(fingerprint, None)  # refreshed on next load
            return True
        except Exception:  # noqa: BLE001 - unpicklable payloads skip the tier
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False

    def _publish(self, fingerprint: str, tmp: str, tenant: Optional[str]) -> None:
        """Atomically move a fully written tmp into place."""
        os.replace(tmp, self._file(fingerprint))

    def _decode_blob(
        self, blob: Any
    ) -> Tuple[List[Any], List[int], Optional[str]]:
        """Validate a loaded blob's shape (anything else is corrupt)."""
        payloads = blob["payloads"]
        partition_bytes = blob["partition_bytes"]
        if not isinstance(payloads, list) or not isinstance(partition_bytes, list):
            raise ValueError("malformed cache blob")
        if len(payloads) != len(partition_bytes):
            raise ValueError("cache blob payload/bytes length mismatch")
        return payloads, partition_bytes, blob["producer"]

    def load(
        self, fingerprint: str
    ) -> Optional[Tuple[List[Any], List[int], Optional[str]]]:
        memo = self._loaded.get(fingerprint)
        if memo is not None:
            return memo
        path = self._file(fingerprint)
        try:
            with open(path, "rb") as fh:
                blob = pickle.load(fh)
            loaded = self._decode_blob(blob)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - truncated/corrupt entry: quarantine
            self.corrupt_entries += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._loaded[fingerprint] = loaded
        return loaded

    def clear(self) -> None:
        self._loaded.clear()
        for name in os.listdir(self.path):
            if name.endswith((".pkl", ".tmp")):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.path) if n.endswith(".pkl"))


class _StoreLock:
    """Cross-process exclusive lock over one store directory.

    ``fcntl.flock`` on a dedicated ``.lock`` file: advisory, held only
    around metadata mutations (publish, sidecar writes, quota eviction),
    released automatically by the kernel if the holder dies.  Falls back
    to no-op locking on platforms without :mod:`fcntl` — single-process
    use stays correct there.
    """

    def __init__(self, path: str):
        self._path = os.path.join(path, ".lock")
        self._fh = None
        try:
            import fcntl  # noqa: F401 - probe availability once

            self._fcntl = fcntl
        except ImportError:  # pragma: no cover - posix containers have it
            self._fcntl = None

    def __enter__(self) -> "_StoreLock":
        if self._fcntl is not None:
            self._fh = open(self._path, "a+")
            self._fcntl.flock(self._fh.fileno(), self._fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fcntl.flock(self._fh.fileno(), self._fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None


class SharedCacheStore(DiskCacheStore):
    """The shared cross-tenant store tier of the multi-tenant job service.

    One directory, many concurrent writer/reader processes, three
    additions over :class:`DiskCacheStore`:

    * **Cross-process write locking** — publishes (the atomic
      ``os.replace``), owner-sidecar writes and quota evictions happen
      under an exclusive ``flock``, so directory metadata never tears.
      Payload pickling stays *outside* the lock (each writer dumps into
      its own per-pid tmp file first).
    * **Single-flight leases** — the first job to miss a fingerprint
      creates ``<fp>.flight`` (``O_CREAT | O_EXCL``); concurrent jobs
      missing the same fingerprint wait (bounded) for the computing job
      to publish instead of recomputing.  Leases are crash-safe: a lease
      older than ``flight_timeout`` real seconds is broken and taken
      over.  Waits are bounded by ``flight_wait`` — on timeout the
      waiter simply recomputes (correct either way; operators are pure).
    * **Per-tenant byte quotas** — every entry carries a ``<fp>.owner``
      sidecar naming the tenant whose run wrote it.  After each save the
      writing tenant's footprint is re-measured and its *oldest* entries
      (publish mtime) are evicted until the quota holds again.  Quotas
      bound footprint, not sharing: any tenant may *read* any entry.
    """

    def __init__(
        self,
        path: str,
        tenant: str = "default",
        quota_bytes: Optional[int] = None,
        flight_timeout: float = 30.0,
        flight_wait: float = 5.0,
        flight_poll: float = 0.005,
        tmp_sweep_age: float = 60.0,
    ):
        self.tenant = str(tenant)
        self.quota_bytes = quota_bytes
        self.flight_timeout = float(flight_timeout)
        self.flight_wait = float(flight_wait)
        self.flight_poll = float(flight_poll)
        #: entries this store evicted to keep its tenant under quota
        self.quota_evictions = 0
        super().__init__(path, tmp_sweep_age=tmp_sweep_age)
        self._lock = _StoreLock(self.path)
        self._owners: Dict[str, Optional[str]] = {}

    def obs_counters(self) -> Dict[str, int]:
        counters = super().obs_counters()
        counters["quota_evictions"] = self.quota_evictions
        return counters

    # ------------------------------------------------------------ sidecars
    def _owner_file(self, fingerprint: str) -> str:
        return os.path.join(self.path, f"{fingerprint}.owner")

    def owner_of(self, fingerprint: str) -> Optional[str]:
        """Tenant that published an entry (None when unlabelled/missing)."""
        memo = self._owners.get(fingerprint)
        if memo is not None:
            return memo
        try:
            with open(self._owner_file(fingerprint)) as fh:
                owner = fh.read().strip() or None
        except OSError:
            return None
        self._owners[fingerprint] = owner
        return owner

    def _publish(self, fingerprint: str, tmp: str, tenant: Optional[str]) -> None:
        owner = tenant or self.tenant
        with self._lock:
            os.replace(tmp, self._file(fingerprint))
            sidecar_tmp = f"{self._owner_file(fingerprint)}.{os.getpid()}.tmp"
            with open(sidecar_tmp, "w") as fh:
                fh.write(owner)
            os.replace(sidecar_tmp, self._owner_file(fingerprint))
            self._owners[fingerprint] = owner
            self._enforce_quota(owner, keep=fingerprint)

    # -------------------------------------------------------------- quotas
    def tenant_usage(self, tenant: str) -> int:
        """Bytes of entry files currently owned by ``tenant`` (on disk)."""
        return sum(nbytes for _, nbytes, _ in self._owned_entries(tenant))

    def _owned_entries(self, tenant: str) -> List[Tuple[str, int, float]]:
        """``(fingerprint, file bytes, publish mtime)`` per owned entry."""
        owned = []
        for name in os.listdir(self.path):
            if not name.endswith(".pkl"):
                continue
            fingerprint = name[: -len(".pkl")]
            if self.owner_of(fingerprint) != tenant:
                continue
            full = os.path.join(self.path, name)
            try:
                stat = os.stat(full)
            except OSError:
                continue
            owned.append((fingerprint, stat.st_size, stat.st_mtime))
        return owned

    def _enforce_quota(self, tenant: str, keep: Optional[str] = None) -> None:
        """Evict the tenant's oldest entries until its quota holds.

        Called with the store lock held.  The just-published entry
        (``keep``) is evicted only as a last resort — when it alone
        exceeds the quota.
        """
        if self.quota_bytes is None:
            return
        owned = sorted(self._owned_entries(tenant), key=lambda e: (e[2], e[0]))
        usage = sum(nbytes for _, nbytes, _ in owned)
        for fingerprint, nbytes, _ in owned:
            if usage <= self.quota_bytes:
                return
            if fingerprint == keep and usage - nbytes <= self.quota_bytes:
                continue  # evicting an older sibling suffices
            self._evict(fingerprint)
            usage -= nbytes
        if usage > self.quota_bytes and keep is not None:
            self._evict(keep)

    def _evict(self, fingerprint: str) -> None:
        for path in (self._file(fingerprint), self._owner_file(fingerprint)):
            try:
                os.unlink(path)
            except OSError:
                pass
        self._loaded.pop(fingerprint, None)
        self._owners.pop(fingerprint, None)
        self.quota_evictions += 1

    # ------------------------------------------------------- single flight
    def _flight_file(self, fingerprint: str) -> str:
        return os.path.join(self.path, f"{fingerprint}.flight")

    def try_begin_flight(self, fingerprint: str) -> bool:
        """Claim the right to compute a fingerprint (True = we compute).

        The lease is a file created with ``O_CREAT | O_EXCL`` — exactly
        one concurrent claimant wins.  A lease older than
        ``flight_timeout`` belongs to a crashed/stuck writer and is
        broken before retrying once.
        """
        path = self._flight_file(fingerprint)
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(path)
                except OSError:
                    continue  # holder just released; retry the claim
                if age < self.flight_timeout:
                    return False
                try:  # stale lease: break it and retry the claim once
                    os.unlink(path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(f"{os.getpid()} {time.time():.3f}")
            return True
        return False

    def end_flight(self, fingerprint: str) -> None:
        """Release a lease taken with :meth:`try_begin_flight`."""
        try:
            os.unlink(self._flight_file(fingerprint))
        except OSError:
            pass

    def flight_active(self, fingerprint: str) -> bool:
        try:
            age = time.time() - os.path.getmtime(self._flight_file(fingerprint))
        except OSError:
            return False
        return age < self.flight_timeout

    def wait_for_flight(
        self, fingerprint: str
    ) -> Optional[Tuple[List[Any], List[int], Optional[str]]]:
        """Wait (bounded) for another job's in-flight computation.

        Polls until the entry is published, the lease disappears without
        a publish (the computing job failed or skipped persistence), or
        ``flight_wait`` real seconds elapse.  Returns the loaded blob on
        publish, else ``None`` (the caller recomputes).
        """
        deadline = time.monotonic() + self.flight_wait
        while True:
            if self.contains(fingerprint):
                loaded = self.load(fingerprint)
                if loaded is not None:
                    return loaded
            if not self.flight_active(fingerprint):
                # one final check: the publish may have landed between the
                # contains() poll and the lease release
                return self.load(fingerprint) if self.contains(fingerprint) else None
            if time.monotonic() >= deadline:
                return None
            time.sleep(self.flight_poll)

    def clear(self) -> None:
        super().clear()
        self._owners.clear()
        for name in os.listdir(self.path):
            if name.endswith((".owner", ".flight")):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass


class ResultCache:
    """Fingerprint → cached stage output, shared across ``run_mdf`` calls.

    Pass one instance via ``EngineConfig(cache=ResultCache(...))``; reusing
    the same instance (and, for the cluster tier, ``run_mdf(...,
    reset=False)`` so prior outputs stay registered) is what makes warm
    re-runs hit.

    ``cost_based=True`` (default) makes the executor serve a hit only when
    the modelled read cost beats the modelled recompute cost — under the
    paper's cost model a disk-resident entry can be *slower* than
    recomputing a cheap operator (disk reads 200 MB/s vs 500 MB/s compute),
    and a cache that slows the job down is worse than no cache.
    """

    def __init__(
        self,
        store: Optional[DiskCacheStore] = None,
        cost_based: bool = True,
    ):
        self.store = store
        self.cost_based = bool(cost_based)
        self.stats = CacheStats()
        self._entries: Dict[str, CacheEntry] = {}
        self._by_dataset: Dict[str, Set[str]] = {}
        #: single-flight leases this cache holds (fingerprints it claimed
        #: on a miss and must release at admission or run end)
        self._owned_flights: Set[str] = set()
        #: store-level corrupt-entry count already surfaced into stats
        self._seen_corrupt = getattr(store, "corrupt_entries", 0)

    @property
    def tenant(self) -> Optional[str]:
        """The tenant this cache reads/writes as (shared stores only)."""
        return getattr(self.store, "tenant", None)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, fingerprint: str) -> Optional[CacheEntry]:
        return self._entries.get(fingerprint)

    def lookup(self, fingerprint: str, cluster) -> Optional[CacheHit]:
        """Resolve a fingerprint to readable bytes, or ``None`` (miss).

        Cluster-tier entries are validated key by key against the live
        cluster; an unbacked entry is invalidated here (lazy path) before
        falling through to the store tier.
        """
        entry = self._entries.get(fingerprint)
        if entry is not None:
            locations = self._resolve(entry, cluster)
            if locations is not None:
                return CacheHit(
                    tier="cluster",
                    fingerprint=fingerprint,
                    partition_bytes=list(entry.partition_bytes),
                    producer=entry.producer,
                    locations=locations,
                )
            self._drop(fingerprint, cluster, reason="backing-lost")
        if self.store is not None:
            loaded = None
            if self.store.contains(fingerprint):
                loaded = self.store.load(fingerprint)
                self._surface_corruption(cluster)
            if loaded is None and self._singleflight_capable():
                loaded = self._singleflight(fingerprint, cluster)
            if loaded is not None:
                payloads, partition_bytes, producer = loaded
                return CacheHit(
                    tier="store",
                    fingerprint=fingerprint,
                    partition_bytes=list(partition_bytes),
                    producer=producer,
                    payloads=payloads,
                    owner_tenant=self._owner_of(fingerprint),
                )
        return None

    def _owner_of(self, fingerprint: str) -> Optional[str]:
        owner_of = getattr(self.store, "owner_of", None)
        return owner_of(fingerprint) if owner_of is not None else None

    def _surface_corruption(self, cluster) -> None:
        """Mirror store-detected corrupt entries into stats + obs."""
        seen = getattr(self.store, "corrupt_entries", 0)
        if seen > self._seen_corrupt:
            delta = seen - self._seen_corrupt
            self._seen_corrupt = seen
            self.stats.corrupt_entries += delta
            cluster.obs.counter("cache_corrupt_entries").inc(delta)

    # --------------------------------------------------------- single flight
    def _singleflight_capable(self) -> bool:
        return hasattr(self.store, "try_begin_flight")

    def _singleflight(self, fingerprint: str, cluster):
        """Resolve a store miss through the single-flight protocol.

        Either we claim the lease (remembering to release it at admission
        or run end) and return ``None`` — meaning *we* compute — or
        another job already holds it and we wait, bounded, for its
        publish.  A successful wait is served as a normal store hit.
        """
        if fingerprint in self._owned_flights:
            return None  # we are the computing job; proceed to execute
        if self.store.try_begin_flight(fingerprint):
            self._owned_flights.add(fingerprint)
            return None
        loaded = self.store.wait_for_flight(fingerprint)
        self._surface_corruption(cluster)
        if loaded is not None:
            self.stats.singleflight_waits += 1
            tenant = self.tenant
            cluster.obs.counter(
                "cache_singleflight_waits", policy=tenant or ""
            ).inc()
        return loaded

    def _release_flight(self, fingerprint: str) -> None:
        if fingerprint in self._owned_flights:
            self.store.end_flight(fingerprint)
            self._owned_flights.discard(fingerprint)

    def finish_run(self) -> None:
        """Release any single-flight leases still held (run teardown).

        A lease survives to run end when its stage output was never
        admitted — a deferred branch tail the choose discarded, a failed
        run, or persistence skipped.  Waiters time out anyway (bounded
        waits), but releasing promptly keeps them from stalling.
        """
        for fingerprint in sorted(self._owned_flights):
            self.store.end_flight(fingerprint)
        self._owned_flights.clear()

    def _resolve(
        self, entry: CacheEntry, cluster
    ) -> Optional[List[Tuple[str, int]]]:
        """Map every entry key to its live owning dataset, or ``None``.

        A key's owner may no longer be the admitting dataset: a choose can
        absorb branch tails into a composite (``register_composite`` pops
        the member records).  Reads must go to the live owner so the R3
        no-use-after-discard invariant keeps holding on cache hits.
        """
        locations: List[Tuple[str, int]] = []
        for key in entry.keys:
            owner = cluster.key_available(key)
            if owner is None:
                return None
            locations.append(owner)
        return locations

    # ------------------------------------------------------------ lifecycle
    def admit(self, fingerprint: str, dataset, cluster) -> None:
        """Remember a freshly materialised stage output.

        ``dataset`` must already be registered on ``cluster`` — the entry
        records the node-store keys of its partitions, not the payloads.
        """
        record = cluster.record(dataset.id)
        entry = CacheEntry(
            fingerprint=fingerprint,
            dataset_id=dataset.id,
            keys=list(record.partition_keys),
            partition_bytes=list(record.partition_bytes),
            producer=record.producer,
        )
        previous = self._entries.get(fingerprint)
        if previous is not None:
            members = self._by_dataset.get(previous.dataset_id)
            if members is not None:
                members.discard(fingerprint)
                if not members:
                    self._by_dataset.pop(previous.dataset_id, None)
        self._entries[fingerprint] = entry
        self._by_dataset.setdefault(dataset.id, set()).add(fingerprint)
        tier = "cluster"
        if self.store is not None and not self.store.contains(fingerprint):
            persisted = self.store.save(
                fingerprint,
                [p.data for p in dataset.partitions],
                entry.partition_bytes,
                entry.producer,
            )
            if persisted:
                tier = "cluster+store"
                self.stats.store_writes += 1
            else:
                self.stats.unpicklable_skipped += 1
        elif self.store is not None:
            tier = "cluster+store"
        if self.store is not None:
            # the fingerprint is now published (or persistence was skipped
            # for good) — stop holding concurrent jobs back either way
            self._release_flight(fingerprint)
        self.stats.admissions += 1
        cluster.obs.counter(
            "cache_admissions", dataset=dataset.id, policy=tier
        ).inc()
        cluster.trace.emit(
            "cache_admit",
            fingerprint=fingerprint,
            dataset=dataset.id,
            nbytes=entry.total_bytes,
            partitions=len(entry.keys),
            tier=tier,
        )

    def invalidate_dataset(self, dataset_id: str, cluster, reason: str) -> None:
        """Eagerly drop every entry admitted under a discarded dataset."""
        for fingerprint in sorted(self._by_dataset.get(dataset_id, ())):
            self._drop(fingerprint, cluster, reason=reason)

    def revalidate(self, cluster, reason: str) -> None:
        """Drop every entry whose backing partitions are no longer readable.

        Called after failure recovery: recomputed partitions were restored
        byte-identically under their original keys (their entries stay
        valid — the *refresh* path), while dropped-dead or discarded
        partitions leave entries unbacked — those die here.
        """
        for fingerprint in sorted(self._entries):
            entry = self._entries.get(fingerprint)
            if entry is not None and self._resolve(entry, cluster) is None:
                self._drop(fingerprint, cluster, reason=reason)

    def _drop(self, fingerprint: str, cluster, reason: str) -> None:
        entry = self._entries.pop(fingerprint, None)
        if entry is None:
            return
        members = self._by_dataset.get(entry.dataset_id)
        if members is not None:
            members.discard(fingerprint)
            if not members:
                self._by_dataset.pop(entry.dataset_id, None)
        self.stats.invalidations += 1
        cluster.obs.counter(
            "cache_invalidations", dataset=entry.dataset_id
        ).inc()
        cluster.trace.emit(
            "cache_invalidate",
            fingerprint=fingerprint,
            dataset=entry.dataset_id,
            reason=reason,
        )

    def clear(self) -> None:
        """Forget all cluster-tier entries (the disk store is untouched)."""
        self._entries.clear()
        self._by_dataset.clear()
