"""Canonical lineage fingerprints for operators, stages and choose outputs.

A fingerprint is a content-addressed identity for "the bytes a stage would
produce": it hashes the operator chain (operator type, cost/size model and
the *operator function itself* — qualname, bytecode, defaults and closure
cells), the fingerprints of every input dataset (the lineage), and the
partitioning layout.  Two stages with equal fingerprints produce equal
payloads partition by partition, which is what lets the result cache
(:mod:`repro.cache.store`) substitute a cached read for real execution —
across sibling explore branches and across ``run_mdf`` calls.

Fingerprints are *conservative*: anything whose identity cannot be
captured deterministically (an open file handle in a closure, an object
with no stable content) raises :class:`FingerprintError` and the stage is
simply never cached.  A missed caching opportunity is cheap; a false
cache hit would be unsound.

Operator ``name`` attributes are deliberately excluded — auto-generated
names (``transform-17``) depend on a process-global counter, while the
cache must recognise the same computation across runs.  Identity is the
function and its parameters, not the label.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import types
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "FingerprintError",
    "callable_token",
    "choose_fingerprint",
    "digest",
    "operator_fingerprint",
    "stage_fingerprint",
    "value_token",
]


class FingerprintError(Exception):
    """A value has no deterministic canonical form; the stage is uncacheable."""


def digest(token: Any) -> str:
    """sha256 over the canonical JSON encoding of a token tree."""
    encoded = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:40]


# --------------------------------------------------------------------- values
def value_token(value: Any, _seen: Optional[set] = None) -> Any:
    """Canonical token of a parameter/closure value (JSON-serialisable)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return ["v", repr(value)]
    if isinstance(value, bytes):
        return ["bytes", hashlib.sha256(value).hexdigest()]
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return [
            "ndarray",
            str(arr.dtype),
            list(arr.shape),
            hashlib.sha256(arr.tobytes()).hexdigest(),
        ]
    if isinstance(value, np.generic):
        return ["npscalar", str(value.dtype), repr(value.item())]
    if isinstance(value, (list, tuple)):
        kind = "tuple" if isinstance(value, tuple) else "list"
        if all(
            x is None or isinstance(x, (bool, int, float, str)) for x in value
        ):
            # flat primitive sequences (the common big-payload case) hash
            # their repr instead of building one token per element
            body = repr(list(value)).encode("utf-8")
            return [kind, len(value), hashlib.sha256(body).hexdigest()]
        return [kind, [value_token(x, _seen) for x in value]]
    if isinstance(value, dict):
        entries = [
            [value_token(k, _seen), value_token(v, _seen)]
            for k, v in value.items()
        ]
        entries.sort(key=lambda e: json.dumps(e[0], sort_keys=True))
        return ["dict", entries]
    if isinstance(value, (set, frozenset)):
        tokens = sorted(
            (value_token(x, _seen) for x in value),
            key=lambda t: json.dumps(t, sort_keys=True),
        )
        return ["set", tokens]
    if callable(value):
        return ["fn", callable_token(value, _seen)]
    token_fn = getattr(value, "fingerprint_token", None)
    if callable(token_fn):
        # objects that define their own canonical identity
        return ["self-described", value_token(token_fn(), _seen)]
    seen = _seen if _seen is not None else set()
    if id(value) in seen:
        return ["recursive"]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        seen.add(id(value))
        try:
            fields = [
                [f.name, value_token(getattr(value, f.name), seen)]
                for f in dataclasses.fields(value)
            ]
        finally:
            seen.discard(id(value))
        return [
            "dataclass",
            type(value).__module__ or "",
            type(value).__qualname__,
            fields,
        ]
    try:
        state = vars(value)
    except TypeError:
        raise FingerprintError(
            f"cannot fingerprint value of type {type(value).__name__!r}"
        ) from None
    # a plain object: its class plus every instance attribute (private ones
    # included — for a parameter value, hidden state is still state)
    seen.add(id(value))
    try:
        attrs = [[k, value_token(v, seen)] for k, v in sorted(state.items())]
    finally:
        seen.discard(id(value))
    return ["object", type(value).__module__ or "", type(value).__qualname__, attrs]


def _code_token(code: types.CodeType, seen: Optional[set]) -> Any:
    consts: List[Any] = []
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            consts.append(_code_token(const, seen))
        else:
            consts.append(value_token(const, seen))
    return [
        "code",
        hashlib.sha256(code.co_code).hexdigest(),
        list(code.co_names),
        consts,
    ]


def callable_token(fn: Any, _seen: Optional[set] = None) -> Any:
    """Canonical token of an operator function.

    Captures everything that determines the function's behaviour: module +
    qualname, the compiled bytecode (so two same-named lambdas with
    different bodies differ), default arguments and closure cell contents
    (so ``lambda xs, t=p["threshold"]: ...`` branches differ per
    parameter).
    """
    seen = _seen if _seen is not None else set()
    if id(fn) in seen:
        return ["recursive"]
    seen.add(id(fn))
    try:
        if isinstance(fn, functools.partial):
            return [
                "partial",
                callable_token(fn.func, seen),
                [value_token(a, seen) for a in fn.args],
                sorted(
                    ([k, value_token(v, seen)] for k, v in fn.keywords.items()),
                    key=lambda e: e[0],
                ),
            ]
        split_token = getattr(fn, "fingerprint_token", None)
        if split_token is not None:
            # objects (e.g. PayloadSplitter) that define their own identity
            return ["self-described", value_token(split_token(), seen)]
        if isinstance(fn, types.MethodType):
            return [
                "method",
                callable_token(fn.__func__, seen),
                value_token(fn.__self__, seen),
            ]
        if isinstance(fn, (types.BuiltinFunctionType, types.BuiltinMethodType)):
            return ["builtin", getattr(fn, "__module__", "") or "", fn.__qualname__]
        if isinstance(fn, types.FunctionType):
            closure: List[Any] = []
            for cell in fn.__closure__ or ():
                try:
                    contents = cell.cell_contents
                except ValueError as exc:  # empty cell
                    raise FingerprintError(
                        f"function {fn.__qualname__!r} has an unset closure cell"
                    ) from exc
                closure.append(value_token(contents, seen))
            return [
                "function",
                fn.__module__ or "",
                fn.__qualname__,
                fn.__name__,
                _code_token(fn.__code__, seen),
                [value_token(v, seen) for v in (fn.__defaults__ or ())],
                sorted(
                    (
                        [k, value_token(v, seen)]
                        for k, v in (fn.__kwdefaults__ or {}).items()
                    ),
                    key=lambda e: e[0],
                ),
                closure,
            ]
        if isinstance(fn, type):
            return ["class", fn.__module__ or "", fn.__qualname__]
        if callable(fn):
            # a callable object: its class plus its stable attributes
            attrs = [
                [k, value_token(v, seen)]
                for k, v in sorted(vars(fn).items())
                if not k.startswith("_")
            ]
            return [
                "callable",
                type(fn).__module__ or "",
                type(fn).__qualname__,
                attrs,
            ]
    finally:
        seen.discard(id(fn))
    raise FingerprintError(f"cannot fingerprint callable {fn!r}")


# ------------------------------------------------------------------ operators
#: attributes that carry labels or graph wiring, not computation identity
_SKIP_ATTRS = frozenset({"name", "input_names"})


def operator_token(op: Any) -> Any:
    """Canonical token of one operator: type + every public attribute."""
    attrs: List[Any] = []
    for key in sorted(vars(op)):
        if key in _SKIP_ATTRS or key.startswith("_"):
            continue
        attrs.append([key, value_token(getattr(op, key))])
    return ["op", type(op).__name__, bool(op.narrow), attrs]


def operator_fingerprint(op: Any) -> str:
    """Fingerprint of one operator (raises :class:`FingerprintError`)."""
    return digest(operator_token(op))


# --------------------------------------------------------------------- stages
def stage_fingerprint(
    kind: str,
    op_fingerprints: Sequence[str],
    input_fingerprints: Sequence[str],
    layout: Any,
) -> str:
    """Fingerprint of a stage's output dataset.

    ``kind`` distinguishes source/narrow/wide/join execution paths;
    ``layout`` pins the partitioning (partition count for sources, worker
    count for shuffles, ``None`` for narrow stages that inherit their
    input's partitioning — already captured by the input fingerprint).
    """
    return digest(
        [
            "stage",
            kind,
            list(op_fingerprints),
            list(input_fingerprints),
            layout,
        ]
    )


def choose_fingerprint(member_fingerprints: Iterable[str]) -> str:
    """Fingerprint of a choose output: its kept members, in kept order."""
    return digest(["choose", list(member_fingerprints)])
