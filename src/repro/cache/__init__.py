"""Lineage-fingerprint result cache: cross-branch and cross-run reuse.

Explore branches of an MDF typically differ in one parameter choice, and
re-running a tweaked MDF (the paper's exploratory loop, §1) re-executes
everything from scratch.  This package memoizes stage outputs keyed by a
canonical fingerprint of *(operator chain identity + parameters, input
lineage, partitioning)* so identical sub-computations are executed once:

* :mod:`repro.cache.fingerprint` — canonical, conservative fingerprints;
* :mod:`repro.cache.store` — the :class:`ResultCache` (cluster tier +
  optional persistent :class:`DiskCacheStore`), entry lifecycle and stats;
  :class:`SharedCacheStore` promotes the disk tier to a concurrency-safe
  shared cross-tenant tier (write locking, single-flight deduplication,
  per-tenant quotas) for the :mod:`repro.service` job service.

Enable it via ``EngineConfig(cache=ResultCache())``; it is **off by
default** and a disabled run is byte-identical to one built before this
package existed.  See ``docs/caching.md`` for the full design.
"""

from .fingerprint import (
    FingerprintError,
    callable_token,
    choose_fingerprint,
    digest,
    operator_fingerprint,
    stage_fingerprint,
    value_token,
)
from .store import (
    CacheEntry,
    CacheHit,
    CacheStats,
    DiskCacheStore,
    ResultCache,
    SharedCacheStore,
)

__all__ = [
    "CacheEntry",
    "CacheHit",
    "CacheStats",
    "DiskCacheStore",
    "FingerprintError",
    "ResultCache",
    "SharedCacheStore",
    "callable_token",
    "choose_fingerprint",
    "digest",
    "operator_fingerprint",
    "stage_fingerprint",
    "value_token",
]
