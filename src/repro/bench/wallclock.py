"""Wall-clock microbenchmark: real Python time the result cache saves.

The figures in :mod:`repro.bench.figures` report *simulated* seconds; this
harness measures the other axis the cache optimises — actual process time.
Every simulated stage really executes its operators on real payloads, so a
cache hit that skips an MLP training step or a mask pass saves genuine
CPU time, not just modelled cost.

Two workloads are timed cold (empty cache) then warm (identical re-run on
the same cluster, ``reset=False``, same :class:`~repro.cache.ResultCache`):

* ``fig05`` — the deep-learning exploration (real SGD training per branch),
  with a :class:`~repro.cache.DiskCacheStore` so branch results discarded
  by the choose still serve from the store tier, where re-training is far
  costlier than a modelled disk read.
* ``fig08`` — the time-series choose-variant exploration (cheap numpy
  masks), cluster tier only; here the cost gate keeps cheap stages on the
  recompute path and the savings come from the source and surviving tails.

``python -m repro.bench --wallclock`` runs both and writes ``BENCH_pr4.json``.
"""

from __future__ import annotations

import json
import tempfile
import time
from typing import Any, Callable, Dict

from ..cache import DiskCacheStore, ResultCache
from ..cluster import Cluster, GB, MB
from ..core.selection import TopK
from ..engine import EngineConfig, run_mdf
from ..workloads import (
    MLPTrainer,
    cifar_like,
    deep_learning_mdf,
    granularity_grid,
    oil_well_trace,
    time_series_mdf,
)

__all__ = ["run_wallclock", "render_wallclock"]


def _cold_warm(
    make_mdf: Callable[[], Any],
    cluster: Cluster,
    config: EngineConfig,
) -> Dict[str, Any]:
    """Time one cold run then one warm re-run of the same MDF."""
    cache = config.cache
    started = time.perf_counter()
    cold_result = run_mdf(make_mdf(), cluster, scheduler="bas", memory="amm", config=config)
    wall_cold = time.perf_counter() - started
    sim_cold = cold_result.completion_time
    hits_before, misses_before = cache.stats.hits, cache.stats.misses
    started = time.perf_counter()
    warm_result = run_mdf(
        make_mdf(), cluster, scheduler="bas", memory="amm", config=config, reset=False
    )
    wall_warm = time.perf_counter() - started
    sim_warm = warm_result.completion_time - sim_cold
    return {
        "wall_cold_s": wall_cold,
        "wall_warm_s": wall_warm,
        "wall_reduction_pct": 100.0 * (1.0 - wall_warm / wall_cold),
        "sim_cold_s": sim_cold,
        "sim_warm_s": sim_warm,
        "sim_reduction_pct": 100.0 * (1.0 - sim_warm / sim_cold),
        "warm_hits": cache.stats.hits - hits_before,
        "warm_misses": cache.stats.misses - misses_before,
        "outputs_identical": repr(cold_result.outputs) == repr(warm_result.outputs),
        "cache_stats": cache.stats.as_dict(),
    }


def _bench_fig05(samples: int, features: int) -> Dict[str, Any]:
    data = cifar_like(n_samples=samples, features=features)
    trainer = MLPTrainer(hidden=16, epochs=2, seed=3)

    def make_mdf():
        return deep_learning_mdf(
            data, mode="exhaustive", trainer=trainer, nominal_bytes=1 * GB
        )

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as tmp:
        cache = ResultCache(store=DiskCacheStore(tmp))
        # materialized choose: losing branch results exist long enough to be
        # written behind to the store tier, so the warm run skips re-training
        # every branch, not just the winner's
        config = EngineConfig(
            pruning=False, incremental_choose=False, cache=cache
        )
        return _cold_warm(make_mdf, Cluster(4, 4 * GB), config)


def _bench_fig08(trace_n: int, branch_count: int) -> Dict[str, Any]:
    trace = oil_well_trace(trace_n)
    grid = granularity_grid(branch_count)

    def make_mdf():
        return time_series_mdf(
            trace, grid, selection=TopK(4, largest=True), nominal_bytes=128 * MB
        )

    cache = ResultCache()
    config = EngineConfig(pruning=False, cache=cache)
    return _cold_warm(make_mdf, Cluster(4, 2 * GB), config)


def run_wallclock(
    out_path: str = "BENCH_pr4.json",
    samples: int = 400,
    features: int = 64,
    trace_n: int = 20_000,
    branch_count: int = 16,
) -> Dict[str, Any]:
    """Run both cold/warm benchmarks and write the JSON report."""
    benches = {
        "fig05_deep_learning": _bench_fig05(samples, features),
        "fig08_time_series": _bench_fig08(trace_n, branch_count),
    }
    total_cold = sum(b["wall_cold_s"] for b in benches.values())
    total_warm = sum(b["wall_warm_s"] for b in benches.values())
    report = {
        "benchmark": "pr4-lineage-fingerprint-result-cache",
        "created_unix": time.time(),
        "benches": benches,
        "wall_cold_total_s": total_cold,
        "wall_warm_total_s": total_warm,
        "wall_reduction_pct_overall": 100.0 * (1.0 - total_warm / total_cold),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def render_wallclock(report: Dict[str, Any]) -> str:
    lines = ["wall-clock cold vs warm (result cache)", "=" * 42]
    for name, bench in report["benches"].items():
        lines.append(
            f"{name}: cold {bench['wall_cold_s']:.3f}s -> warm "
            f"{bench['wall_warm_s']:.3f}s ({bench['wall_reduction_pct']:.1f}% wall, "
            f"{bench['sim_reduction_pct']:.1f}% simulated, "
            f"{bench['warm_hits']} hits)"
        )
    lines.append(
        f"overall: {report['wall_cold_total_s']:.3f}s -> "
        f"{report['wall_warm_total_s']:.3f}s "
        f"({report['wall_reduction_pct_overall']:.1f}% faster warm)"
    )
    return "\n".join(lines)
