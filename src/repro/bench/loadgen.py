"""Load generator for the multi-tenant job service (PR9).

Drives :class:`~repro.service.JobService` the way real tenants would —
many submissions, mixed workloads, a shared cross-tenant cache — and
measures what a service operator cares about:

* **throughput** — jobs/sec over the whole run;
* **latency** — exact (nearest-rank) p50/p99 submission-to-completion
  wall seconds;
* **cross-tenant reuse** — shared-store hits on entries another tenant
  computed, as a function of tenant count and workload *overlap* (the
  fraction of each tenant's jobs that target the shared compute-heavy
  ``dl_grid`` workload instead of the tenant's private one);
* **concurrency** — the same job set run serially vs on a worker pool
  (honest about ``os.cpu_count()``: a 1-core box shows no speedup).

With the PR10 observability plane on (the default), every scenario also
reports the service-altitude verdicts:

* **replay parity** — the service registry rebuilt from
  ``service_events.ndjson`` + the per-job NDJSON streams must satisfy
  ``diff_registries == []`` on every scenario;
* **fairness** — per-tenant achieved vs entitled weighted share from
  the SFQ virtual-clock audit, with zero fairness alerts on clean runs;
* **SLO attainment** — per-tenant attainment against the loadgen's
  default objective (:data:`DEFAULT_SLOS`).

The two hard invariants are asserted on every single job and reported
as verdict lines (CI greps them):

* every job's sink outputs are **byte-identical to a solo run** of the
  same workload (:func:`~repro.service.worker.outputs_digest`);
* every job's trace passes **all seven paper validators** (zero
  violations).

``python -m repro.bench --loadgen`` runs everything and writes
``BENCH_pr10.json``; ``--loadgen-quick`` is the CI-sized variant.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from ..lab.workloads import get_workload
from ..service import (
    DONE,
    JobService,
    replay_service_registry,
    service_registry_diff,
)

__all__ = ["DEFAULT_SLOS", "percentile", "run_loadgen", "render_loadgen"]

SHARED_WORKLOAD = "dl_grid"
PRIVATE_WORKLOADS = [f"svc_private_t{i}" for i in range(4)]

#: the loadgen's default per-tenant objective — generous latency bound,
#: so a clean run attains 1.0 and any burn alert is a real regression
DEFAULT_SLOS = {"*": {"latency_s": 300.0, "target": 0.9}}


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact nearest-rank percentile (no interpolation, no numpy)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _obs_verdict(service: JobService) -> Dict[str, Any]:
    """The service-plane verdicts of one drained run: replay parity,
    per-tenant fairness shares, SLO attainment, alert counts."""
    obs = service.obs
    if obs is None:
        return {"enabled": False}
    replayed = replay_service_registry(service.spool)
    parity = service_registry_diff(obs, replayed)
    return {
        "enabled": True,
        "replay_parity": not parity,
        "replay_parity_failures": parity[:20],
        "fairness": obs.fairness.shares(),
        "fairness_alerts": sum(1 for a in obs.alerts if a.kind == "fairness"),
        "slo": obs.slo.attainment(),
        "slo_alerts": sum(1 for a in obs.alerts if a.kind == "slo"),
    }


def _drain(service: JobService, timeout: float = 600.0):
    records = service.drain(timeout=timeout)
    bad = [r for r in records if r.status != DONE]
    if bad:
        raise RuntimeError(
            f"loadgen job(s) failed: "
            + "; ".join(f"{r.job_id}: {r.error}" for r in bad)
        )
    return records


def _job_summary(records) -> Dict[str, Any]:
    """Aggregate a drained job set: latency, identity, cache, validators."""
    latencies = [r.latency for r in records]
    cache_totals: Dict[str, float] = {}
    violations = 0
    for r in records:
        violations += r.result.get("violations", 0)
        for key, value in (r.result.get("cache") or {}).items():
            cache_totals[key] = cache_totals.get(key, 0) + value
    first_submit = min(r.submitted_at for r in records)
    last_finish = max(r.finished_at for r in records)
    makespan = max(1e-9, last_finish - first_submit)
    hits = cache_totals.get("hits", 0)
    lookups = hits + cache_totals.get("misses", 0)
    return {
        "jobs": len(records),
        "makespan_s": makespan,
        "jobs_per_sec": len(records) / makespan,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "latency_mean_s": sum(latencies) / len(latencies),
        "validator_violations": violations,
        "cache": cache_totals,
        "hit_rate": (hits / lookups) if lookups else 0.0,
        "cross_tenant_hits": cache_totals.get("cross_tenant_hits", 0),
        "cross_tenant_hit_rate": (
            cache_totals.get("cross_tenant_hits", 0) / hits if hits else 0.0
        ),
    }


def _check_identity(records, solo_digests: Dict[str, str]) -> List[str]:
    """Per-job byte-identity against the solo reference; returns breaches."""
    breaches = []
    for r in records:
        digest = r.result.get("outputs_digest")
        expected = solo_digests[r.spec.workload]
        if digest != expected:
            breaches.append(
                f"{r.job_id} ({r.spec.workload}): {digest} != solo {expected}"
            )
    return breaches


# ------------------------------------------------------------- scenarios
def _solo_baselines(workloads: Sequence[str]) -> Dict[str, Dict[str, Any]]:
    """Run each workload once, alone, cache off — the identity/latency
    reference every service-run job is compared against."""
    baselines: Dict[str, Dict[str, Any]] = {}
    for name in workloads:
        get_workload(name)  # fail fast on unknown names
        with JobService(workers=1, cache=False, slos=DEFAULT_SLOS) as service:
            service.submit("solo", name)
            record = _drain(service)[0]
        baselines[name] = {
            "workload": name,
            "outputs_digest": record.result["outputs_digest"],
            "wall_s": record.result["wall_s"],
            "latency_s": record.latency,
            "validator_violations": record.result["violations"],
            "obs": _obs_verdict(service),
        }
    return baselines


def _concurrency_scenario(workers: int, jobs: int) -> Dict[str, Any]:
    """The same job set serially (1 worker) vs on a pool — cache off in
    both runs, so any wall-clock difference is pure concurrency."""
    job_set = [PRIVATE_WORKLOADS[i % len(PRIVATE_WORKLOADS)] for i in range(jobs)]
    job_set += [SHARED_WORKLOAD] * min(2, jobs)
    timings = {}
    obs_verdicts = {}
    for label, pool in (("serial", 1), ("concurrent", workers)):
        started = time.perf_counter()
        with JobService(workers=pool, cache=False, slos=DEFAULT_SLOS) as service:
            for i, workload in enumerate(job_set):
                service.submit(f"t{i % 2}", workload)
            _drain(service)
        timings[label] = time.perf_counter() - started
        obs_verdicts[label] = _obs_verdict(service)
    return {
        "obs": obs_verdicts,
        "jobs": len(job_set),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "wall_serial_s": timings["serial"],
        "wall_concurrent_s": timings["concurrent"],
        "speedup": timings["serial"] / timings["concurrent"],
    }


def _overlap_cell(
    tenants: int,
    jobs_per_tenant: int,
    overlap: float,
    workers: int,
    solo_digests: Dict[str, str],
) -> Dict[str, Any]:
    """One grid cell: ``tenants`` tenants, each submitting
    ``jobs_per_tenant`` jobs of which ``round(overlap * J)`` target the
    shared workload and the rest the tenant's private one."""
    shared_jobs = round(overlap * jobs_per_tenant)
    with JobService(
        workers=workers,
        tenants={f"tenant-{i}": 1.0 for i in range(tenants)},
        slos=DEFAULT_SLOS,
    ) as service:
        for j in range(jobs_per_tenant):
            for i in range(tenants):
                workload = (
                    SHARED_WORKLOAD
                    if j < shared_jobs
                    else PRIVATE_WORKLOADS[i % len(PRIVATE_WORKLOADS)]
                )
                service.submit(f"tenant-{i}", workload)
        records = _drain(service)
        shares = service.queue.admission_shares()
    obs = _obs_verdict(service)
    cell = _job_summary(records)
    cell.update(
        tenants=tenants,
        jobs_per_tenant=jobs_per_tenant,
        overlap=overlap,
        workers=workers,
        admission_shares=shares,
        identity_breaches=_check_identity(records, solo_digests),
        obs=obs,
        # per-tenant observability columns (flattened for easy plotting);
        # the fair bound is the pairwise SFQ lag bound for *ragged*
        # admission windows: the tenant's own granule plus the largest
        # granule among its competitors
        fairness={
            name: {
                "achieved_share": share["achieved_share"],
                "entitled_share": share["entitled_share"],
                "within_fair_bound": (
                    abs(share["achieved_cost"] - share["entitled_cost"])
                    <= share["granule"]
                    + max(
                        s["granule"]
                        for s in obs.get("fairness", {}).values()
                    )
                    + 1e-9
                ),
            }
            for name, share in obs.get("fairness", {}).items()
        },
        slo_attainment={
            name: slo["attained"] for name, slo in obs.get("slo", {}).items()
        },
    )
    return cell


def _warm_reuse_scenario(
    workers: int, solo_digests: Dict[str, str]
) -> Dict[str, Any]:
    """Cold tenant populates the shared store; a *different* tenant then
    runs the same workload and must be faster with nonzero cross-tenant
    hits — the service's whole reason to share the cache."""
    with JobService(workers=workers, slos=DEFAULT_SLOS) as service:
        service.submit("cold-tenant", SHARED_WORKLOAD)
        cold = _drain(service)[0]
        service.submit("warm-tenant", SHARED_WORKLOAD)
        warm = [r for r in _drain(service) if r.tenant == "warm-tenant"][0]
    warm_cache = warm.result["cache"]
    return {
        "obs": _obs_verdict(service),
        "workload": SHARED_WORKLOAD,
        "cold_latency_s": cold.latency,
        "warm_latency_s": warm.latency,
        "warm_speedup": cold.latency / max(1e-9, warm.latency),
        "warm_store_hits": warm_cache.get("store_hits", 0),
        "warm_cross_tenant_hits": warm_cache.get("cross_tenant_hits", 0),
        "warm_compute_seconds_saved": warm_cache.get("compute_seconds_saved", 0.0),
        "identity_breaches": _check_identity([cold, warm], solo_digests),
        "validator_violations": (
            cold.result["violations"] + warm.result["violations"]
        ),
    }


# ------------------------------------------------------------ entry point
def run_loadgen(
    out_path: str = "BENCH_pr10.json",
    tenants: Sequence[int] = (2, 3),
    jobs_per_tenant: int = 3,
    overlaps: Sequence[float] = (0.0, 0.5, 1.0),
    workers: int = 2,
) -> Dict[str, Any]:
    """Run every scenario and write the JSON report."""
    used = sorted({SHARED_WORKLOAD, *PRIVATE_WORKLOADS})
    baselines = _solo_baselines(used)
    solo_digests = {n: b["outputs_digest"] for n, b in baselines.items()}

    cells = [
        _overlap_cell(t, jobs_per_tenant, overlap, workers, solo_digests)
        for t in tenants
        for overlap in overlaps
    ]
    warm = _warm_reuse_scenario(workers, solo_digests)
    concurrency = _concurrency_scenario(workers, jobs=2 * workers)

    breaches = [b for cell in cells for b in cell["identity_breaches"]]
    breaches += warm["identity_breaches"]
    violations = sum(c["validator_violations"] for c in cells)
    violations += warm["validator_violations"]
    violations += sum(b["validator_violations"] for b in baselines.values())

    # service-plane verdicts, aggregated over every scenario's service run
    obs_verdicts = (
        [b["obs"] for b in baselines.values()]
        + [c["obs"] for c in cells]
        + [warm["obs"]]
        + list(concurrency["obs"].values())
    )
    replay_failures = [
        failure
        for verdict in obs_verdicts
        for failure in verdict.get("replay_parity_failures", [])
    ]
    fairness_alerts = sum(v.get("fairness_alerts", 0) for v in obs_verdicts)
    slo_alerts = sum(v.get("slo_alerts", 0) for v in obs_verdicts)

    report = {
        "benchmark": "pr10-service-observability-loadgen",
        "created_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "slos": DEFAULT_SLOS,
        "solo_baselines": baselines,
        "overlap_grid": cells,
        "warm_reuse": warm,
        "concurrency": concurrency,
        "identity_breaches": breaches,
        "outputs_identical": not breaches,
        "validator_violations": violations,
        "replay_parity": not replay_failures,
        "replay_parity_failures": replay_failures[:50],
        "fairness_alerts": fairness_alerts,
        "slo_alerts": slo_alerts,
        "ok": (
            not breaches
            and violations == 0
            and warm["warm_cross_tenant_hits"] > 0
            and warm["warm_latency_s"] < warm["cold_latency_s"]
            and not replay_failures
            and fairness_alerts == 0
        ),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def render_loadgen(report: Dict[str, Any]) -> str:
    lines = ["multi-tenant service loadgen", "=" * 42]
    lines.append(
        f"host: {report['cpu_count']} cores, {report['workers']} service workers"
    )
    lines.append("")
    lines.append("tenants  overlap  jobs  jobs/sec   p50      p99      "
                 "hit-rate  x-tenant-hits")
    for cell in report["overlap_grid"]:
        lines.append(
            f"{cell['tenants']:>7}  {cell['overlap']:>7.2f}  {cell['jobs']:>4}"
            f"  {cell['jobs_per_sec']:>8.2f}  {cell['latency_p50_s']:>6.3f}s"
            f"  {cell['latency_p99_s']:>6.3f}s  {cell['hit_rate']:>8.2f}"
            f"  {cell['cross_tenant_hits']:>13}"
        )
    warm = report["warm_reuse"]
    concurrency = report["concurrency"]
    lines.append("")
    lines.append(
        f"warm reuse ({warm['workload']}): cold {warm['cold_latency_s']:.3f}s"
        f" -> warm {warm['warm_latency_s']:.3f}s"
        f" ({warm['warm_speedup']:.1f}x,"
        f" {warm['warm_compute_seconds_saved']:.1f} modelled compute-s saved)"
    )
    lines.append(
        f"concurrency: {concurrency['jobs']} jobs,"
        f" serial {concurrency['wall_serial_s']:.3f}s vs"
        f" {concurrency['workers']} workers {concurrency['wall_concurrent_s']:.3f}s"
        f" -> {concurrency['speedup']:.2f}x on {concurrency['cpu_count']} core(s)"
    )
    # per-tenant fairness / SLO columns of the busiest overlap cell
    audited = [c for c in report["overlap_grid"] if c.get("fairness")]
    if audited:
        cell = audited[-1]
        lines.append("")
        lines.append(
            f"fairness/SLO ({cell['tenants']} tenants, "
            f"overlap {cell['overlap']:.2f}):"
        )
        lines.append("  tenant      achieved  entitled  fair-bound  slo-attained")
        for name in sorted(cell["fairness"]):
            fair = cell["fairness"][name]
            attained = cell.get("slo_attainment", {}).get(name)
            lines.append(
                f"  {name:<10}  {fair['achieved_share']:>8.2f}"
                f"  {fair['entitled_share']:>8.2f}"
                f"  {'yes' if fair['within_fair_bound'] else 'NO':>10}"
                f"  {attained if attained is None else format(attained, '.2f'):>12}"
            )
    lines.append("")
    # verdict lines — CI greps these exact prefixes
    lines.append(
        "outputs identical to solo: "
        + ("yes" if report["outputs_identical"] else "NO")
    )
    for breach in report["identity_breaches"]:
        lines.append(f"  identity breach: {breach}")
    lines.append(f"validator violations: {report['validator_violations']}")
    lines.append(
        f"cross-tenant hits (warm tenant): {warm['warm_cross_tenant_hits']}"
    )
    lines.append(
        "warm tenant faster than cold: "
        + ("yes" if warm["warm_latency_s"] < warm["cold_latency_s"] else "NO")
    )
    lines.append(
        "service replay parity: " + ("yes" if report["replay_parity"] else "NO")
    )
    for failure in report["replay_parity_failures"][:10]:
        lines.append(f"  replay mismatch: {failure}")
    lines.append(f"fairness alerts: {report['fairness_alerts']}")
    lines.append(f"slo alerts: {report['slo_alerts']}")
    return "\n".join(lines)
