"""Wall-clock benchmark: serial vs mp execution backend (``BENCH_pr8.json``).

The backend contract says only *real* wall-clock may change — so this
harness measures exactly that, on the compute-dominated figures the
profiler flags: the deep-learning exploration (real SGD training per
branch; the ``mp`` backend runs the independent branch trainings on the
process pool via wide-stage prefetch) and the time-series exploration
(numpy mask passes per branch).

Alongside the timings it re-asserts the determinism invariant end to
end: byte-identical outputs, byte-identical canonical traces, identical
simulated completion times, and clean validator verdicts on both
backends.  The report records the host's CPU budget (``cpu_count``,
affinity) because the speedup is a property of the machine as much as of
the backend: with a single usable core there is no parallel slack and
``mp`` pays pure transport overhead; the ratio recorded on such a host
documents that honestly rather than flattering the backend.

``python -m repro.bench --wallclock-backends`` runs it and writes
``BENCH_pr8.json`` (the CI ``parallel-smoke`` job uploads the report
from a multi-core runner).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict

from ..cluster import Cluster, GB, MB
from ..core.selection import TopK
from ..engine import EngineConfig, run_mdf
from ..engine.backends import make_backend
from ..obs.bridge import diff_registries
from ..trace.validate import validate_trace
from ..workloads import (
    MLPTrainer,
    cifar_like,
    deep_learning_mdf,
    granularity_grid,
    oil_well_trace,
    time_series_mdf,
)

__all__ = ["run_backend_wallclock", "render_backend_wallclock"]

BACKENDS = ("serial", "mp")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_one(
    make_mdf: Callable[[], Any],
    make_cluster: Callable[[], Cluster],
    make_config: Callable[[], EngineConfig],
    backend_name: str,
) -> Dict[str, Any]:
    backend = make_backend(backend_name)
    cluster = make_cluster()
    started = time.perf_counter()
    try:
        result = run_mdf(
            make_mdf(),
            cluster,
            scheduler="bas",
            memory="amm",
            config=make_config(),
            backend=backend,
        )
    finally:
        wall = time.perf_counter() - started
        backend.close()
    return {
        "wall_s": wall,
        "completion_time": result.completion_time,
        "outputs_repr": repr(result.outputs),
        "trace_jsonl": result.events.to_jsonl() if result.events else "",
        "violations": (
            len(validate_trace(result.events)) if result.events else 0
        ),
        "registry": cluster.obs,
        "backend_stats": backend.stats.as_dict(),
    }


def _bench_figure(
    name: str,
    make_mdf: Callable[[], Any],
    make_cluster: Callable[[], Cluster],
    make_config: Callable[[], EngineConfig],
) -> Dict[str, Any]:
    runs = {b: _run_one(make_mdf, make_cluster, make_config, b) for b in BACKENDS}
    serial, mp = runs["serial"], runs["mp"]
    identical = (
        serial["outputs_repr"] == mp["outputs_repr"]
        and serial["completion_time"] == mp["completion_time"]
        and serial["trace_jsonl"] == mp["trace_jsonl"]
        and diff_registries(serial["registry"], mp["registry"]) == []
    )
    return {
        "figure": name,
        "wall_serial_s": serial["wall_s"],
        "wall_mp_s": mp["wall_s"],
        "speedup_mp": serial["wall_s"] / mp["wall_s"] if mp["wall_s"] else 0.0,
        "sim_completion_s": serial["completion_time"],
        "identical": identical,
        "violations_serial": serial["violations"],
        "violations_mp": mp["violations"],
        "mp_backend_stats": mp["backend_stats"],
    }


def _fig05_deep_learning(samples: int, features: int) -> Dict[str, Any]:
    data = cifar_like(n_samples=samples, features=features)
    trainer = MLPTrainer(hidden=16, epochs=2, seed=3)
    return _bench_figure(
        "fig05_deep_learning",
        # exhaustive mode: every branch really trains, and the wide train
        # stages of sibling branches are what the mp backend prefetches
        lambda: deep_learning_mdf(
            data, mode="exhaustive", trainer=trainer, nominal_bytes=1 * GB
        ),
        lambda: Cluster(4, 4 * GB),
        lambda: EngineConfig(pruning=False, incremental_choose=False),
    )


def _fig08_time_series(trace_n: int, branch_count: int) -> Dict[str, Any]:
    trace = oil_well_trace(trace_n)
    grid = granularity_grid(branch_count)
    return _bench_figure(
        "fig08_time_series",
        lambda: time_series_mdf(
            trace, grid, selection=TopK(4, largest=True), nominal_bytes=128 * MB
        ),
        lambda: Cluster(4, 2 * GB),
        lambda: EngineConfig(pruning=False, incremental_choose=False),
    )


def run_backend_wallclock(
    out_path: str = "BENCH_pr8.json",
    samples: int = 1200,
    features: int = 96,
    trace_n: int = 60_000,
    branch_count: int = 16,
) -> Dict[str, Any]:
    """Time both figures on both backends and write the JSON report."""
    benches = {
        "fig05_deep_learning": _fig05_deep_learning(samples, features),
        "fig08_time_series": _fig08_time_series(trace_n, branch_count),
    }
    cores = _usable_cores()
    best = max(b["speedup_mp"] for b in benches.values())
    report = {
        "benchmark": "pr8-parallel-execution-backend",
        "created_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "usable_cores": cores,
        "benches": benches,
        "best_speedup_mp": best,
        "all_identical": all(b["identical"] for b in benches.values()),
        "verdict": (
            f"mp {best:.2f}x vs serial on {cores} usable core(s); "
            + (
                "single-core host: no parallel slack exists, the ratio "
                "is pure transport overhead (run on >=2 cores for the "
                "real speedup)"
                if cores < 2
                else "parallel slack available"
            )
        ),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def render_backend_wallclock(report: Dict[str, Any]) -> str:
    lines = [
        "wall-clock serial vs mp backend (simulated results byte-identical)",
        "=" * 66,
    ]
    for name, bench in report["benches"].items():
        lines.append(
            f"{name}: serial {bench['wall_serial_s']:.3f}s  "
            f"mp {bench['wall_mp_s']:.3f}s  "
            f"({bench['speedup_mp']:.2f}x, identical="
            f"{bench['identical']}, violations "
            f"{bench['violations_serial']}/{bench['violations_mp']})"
        )
    lines.append(report["verdict"])
    return "\n".join(lines)
