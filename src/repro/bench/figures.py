"""Experiment definitions: one function per table/figure of the paper (§6).

Every function runs the corresponding experiment on the simulated cluster
at a laptop-friendly scale and returns a :class:`FigureResult` with the
paper-style rows plus shape checks (who wins, by roughly what factor).
The ``benchmarks/`` tree wraps these in pytest-benchmark targets and
EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    run_parallel,
    run_sequential,
    seep_bfs,
    seep_mdf,
    spark_cache,
    spark_sequential,
    spark_yarn,
)
from ..cluster import CheckpointConfig, Cluster, FailureInjector, GB, MB
from ..core import MDFBuilder
from ..core.evaluators import RatioEvaluator
from ..core.optimizations import table1_rows
from ..core.selection import (
    Interval,
    KInterval,
    KThreshold,
    Max,
    Min,
    Mode,
    Threshold,
    TopK,
)
from ..core.evaluators import CallableEvaluator, SizeEvaluator
from ..core.collapse import CollapsedMDF
from ..engine import EngineConfig, RandomHint, SortedHint, run_mdf
from ..workloads import (
    MLPTrainer,
    time_series_full_mdf,
    cifar_like,
    deep_learning_combinations,
    deep_learning_job,
    deep_learning_mdf,
    granularity_grid,
    kde_combinations,
    kde_job,
    kde_mdf,
    oil_well_trace,
    normal_values,
    string_int_pairs,
    synthetic_combinations,
    synthetic_job,
    synthetic_mdf,
    time_series_combinations,
    time_series_job,
    time_series_mdf,
)
from .report import improvement, render_table, rows_to_dict


@dataclass
class FigureResult:
    """Rows of one regenerated table/figure plus its shape checks."""

    figure: str
    title: str
    columns: List[str]
    rows: List[List[Any]]
    checks: Dict[str, bool] = field(default_factory=dict)
    note: Optional[str] = None

    def render(self) -> str:
        text = render_table(f"{self.figure}: {self.title}", self.columns, self.rows, self.note)
        if self.checks:
            text += "shape checks: " + ", ".join(
                f"{name}={'OK' if ok else 'FAIL'}" for name, ok in self.checks.items()
            ) + "\n"
        return text

    def as_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure,
            "rows": rows_to_dict(self.columns, self.rows),
            "checks": self.checks,
        }

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


# --------------------------------------------------------------------- Tab 1


def table1_optimizations() -> FigureResult:
    """Table 1: optimisations per evaluator/selection property combination."""
    monotone = SizeEvaluator()  # monotone=True by default
    convex = CallableEvaluator(lambda p: 0.0, name="mise", convex=True)
    plain = CallableEvaluator(lambda p: 0.0, name="custom")
    pairs = [
        ("monotone", monotone, "top-k (associative)", TopK(2)),
        ("convex", convex, "min (associative)", Min()),
        ("none", plain, "k-threshold (assoc+non-exh)", KThreshold(2, 0.5)),
        ("none", plain, "threshold (associative)", Threshold(0.5)),
        ("none", plain, "interval (associative)", Interval(0.0, 1.0)),
        ("none", plain, "k-interval (assoc+non-exh)", KInterval(2, 0.0, 1.0)),
        ("none", plain, "mode (not associative)", Mode()),
        ("monotone", monotone, "max (associative)", Max()),
    ]
    rows = [list(r) for r in table1_rows(pairs)]
    by_sel = {row[1]: (row[2], row[3]) for row in rows}
    checks = {
        "monotone+assoc prunes": by_sel["top-k (associative)"] == (True, True),
        "convex+assoc prunes": by_sel["min (associative)"] == (True, True),
        "non-exhaustive prunes": by_sel["k-threshold (assoc+non-exh)"] == (True, True),
        "assoc-only discards only": by_sel["threshold (associative)"] == (True, False),
        "mode gets nothing": by_sel["mode (not associative)"] == (False, False),
    }
    return FigureResult(
        "Table 1",
        "optimisations for choose operator functions",
        ["evaluator", "selection", "discard incrementally", "prune superfluous"],
        rows,
        checks,
    )


# --------------------------------------------------------------------- Fig 5


def fig5_deep_learning(
    samples: int = 600,
    features: int = 64,
    workers: int = 8,
    mem_per_worker: int = 4 * GB,
    nominal_bytes: int = 2 * GB,
) -> FigureResult:
    """Fig. 5: deep-learning completion time across exploration modes."""
    data = cifar_like(n_samples=samples, features=features)
    trainer = MLPTrainer(hidden=16, epochs=1, seed=3)
    cluster = Cluster(workers, mem_per_worker)
    rows: List[List[Any]] = []
    results: Dict[str, Dict[str, float]] = {}
    for mode in ("weights_only", "hyper_only", "exhaustive", "early_choose"):
        mdf = deep_learning_mdf(data, mode=mode, trainer=trainer, nominal_bytes=nominal_bytes)
        combos = deep_learning_combinations(mode)
        jobs = [
            deep_learning_job(data, p, trainer=trainer, nominal_bytes=nominal_bytes)
            for p in combos
        ]
        seq = run_sequential(jobs, cluster).completion_time
        p4 = run_parallel(jobs, cluster, k=4).completion_time
        p8 = run_parallel(jobs, cluster, k=8).completion_time
        mdf_t = seep_mdf(mdf, cluster).completion_time
        results[mode] = {"seq": seq, "p4": p4, "p8": p8, "mdf": mdf_t}
        rows.append([mode, len(combos), seq, p4, p8, mdf_t])
    exhaustive = results["exhaustive"]
    early = results["early_choose"]
    checks = {
        "weights-only: approaches close": (
            results["weights_only"]["seq"] / results["weights_only"]["mdf"] < 4.0
        ),
        "exhaustive: mdf beats sequential by >=40%": improvement(
            exhaustive["seq"], exhaustive["mdf"]
        )
        >= 40.0,
        "exhaustive: mdf beats 4-parallel": exhaustive["mdf"] < exhaustive["p4"],
        "exhaustive: mdf beats 8-parallel": exhaustive["mdf"] < exhaustive["p8"],
        "early-choose: mdf beats 8-parallel by >=70%": improvement(
            early["p8"], early["mdf"]
        )
        >= 70.0,
    }
    return FigureResult(
        "Fig. 5",
        "deep learning job completion time (simulated s)",
        ["mode", "paths", "sequential", "4-parallel", "8-parallel", "MDF"],
        rows,
        checks,
        note="paper: MDF -60% vs sequential (exhaustive); early-choose -85% vs 8-parallel",
    )


# --------------------------------------------------------------------- Fig 6


def fig6_data_profiling(
    sizes_mb: Sequence[int] = (256, 512, 1024, 2048),
    values_n: int = 8000,
    workers: int = 8,
    mem_per_worker: int = 1 * GB,
) -> FigureResult:
    """Fig. 6: data-profiling (KDE) completion time vs input size."""
    values = normal_values(values_n)
    cluster = Cluster(workers, mem_per_worker)
    combos = kde_combinations()
    rows: List[List[Any]] = []
    improvements = []
    last = {}
    for size_mb in sizes_mb:
        nominal = size_mb * MB
        mdf = kde_mdf(values, nominal_bytes=nominal)
        jobs = [kde_job(values, p, nominal_bytes=nominal) for p in combos]
        seq = run_sequential(jobs, cluster).completion_time
        p4 = run_parallel(jobs, cluster, k=4).completion_time
        p8 = run_parallel(jobs, cluster, k=8).completion_time
        mdf_t = seep_mdf(mdf, cluster).completion_time
        improvements.append(improvement(seq, mdf_t))
        last = {"seq": seq, "p4": p4, "p8": p8, "mdf": mdf_t}
        rows.append([size_mb, seq, p4, p8, mdf_t, improvements[-1]])
    checks = {
        "mdf always fastest": all(
            row[5] > 0 and row[4] == min(row[1:5]) for row in rows
        ),
        "average improvement >= 55%": float(np.mean(improvements)) >= 55.0,
        "8-parallel beats 4-parallel": last["p8"] <= last["p4"],
        "parallel beats sequential": last["p4"] < last["seq"],
    }
    return FigureResult(
        "Fig. 6",
        "data profiling (KDE) completion time vs input size",
        ["size (MB)", "sequential", "4-parallel", "8-parallel", "MDF", "MDF vs seq (%)"],
        rows,
        checks,
        note="paper: MDF fastest at every size, ~-70% vs sequential on average",
    )


# --------------------------------------------------------------------- Fig 7


def fig7_time_series(
    branch_counts: Sequence[int] = (16, 64, 256),
    trace_n: int = 20_000,
    workers: int = 8,
    mem_per_worker: int = 2 * GB,
    nominal_bytes: int = 128 * MB,
) -> FigureResult:
    """Fig. 7: time-series completion time vs number of branches."""
    trace = oil_well_trace(trace_n)
    cluster = Cluster(workers, mem_per_worker)
    rows: List[List[Any]] = []
    seq_times = []
    for count in branch_counts:
        grid = granularity_grid(count)
        mdf = time_series_mdf(trace, grid, nominal_bytes=nominal_bytes)
        jobs = [
            time_series_job(trace, p, grid, nominal_bytes=nominal_bytes)
            for p in time_series_combinations(grid)
        ]
        seq = run_sequential(jobs, cluster).completion_time
        p4 = run_parallel(jobs, cluster, k=4).completion_time
        p8 = run_parallel(jobs, cluster, k=8).completion_time
        mdf_t = seep_mdf(mdf, cluster).completion_time
        seq_times.append(seq)
        rows.append([count, seq, p4, p8, mdf_t, improvement(seq, mdf_t), improvement(p8, mdf_t)])
    growth = [seq_times[i + 1] / seq_times[i] for i in range(len(seq_times) - 1)]
    branch_growth = [
        branch_counts[i + 1] / branch_counts[i] for i in range(len(branch_counts) - 1)
    ]
    checks = {
        "sequential grows ~linearly in branches": all(
            0.5 * bg <= g <= 1.5 * bg for g, bg in zip(growth, branch_growth)
        ),
        "mdf beats sequential by 60-98%": all(60.0 <= row[5] <= 99.0 for row in rows),
        "mdf beats parallel everywhere": all(row[4] < row[3] for row in rows),
    }
    return FigureResult(
        "Fig. 7",
        "time series analysis completion time vs #branches",
        [
            "branches",
            "sequential",
            "4-parallel",
            "8-parallel",
            "MDF",
            "vs seq (%)",
            "vs 8p (%)",
        ],
        rows,
        checks,
        note="paper: sequential linear; MDF -60%..-98%",
    )


# --------------------------------------------------------------------- Fig 8


def fig8_choose_variants(
    branch_count: int = 64,
    trace_n: int = 20_000,
    workers: int = 8,
    mem_per_worker: int = 2 * GB,
    nominal_bytes: int = 128 * MB,
    random_runs: int = 12,
) -> FigureResult:
    """Fig. 8: the effect of choose functions and scheduling hints."""
    trace = oil_well_trace(trace_n)
    grid = granularity_grid(branch_count)
    cluster = Cluster(workers, mem_per_worker)

    def run_variant(selection, evaluator=None, hint=None, pruning=True) -> float:
        mdf = time_series_mdf(
            trace, grid, selection=selection, evaluator=evaluator, nominal_bytes=nominal_bytes
        )
        config = EngineConfig(pruning=pruning)
        if hint is not None:
            config.hint = hint
        return run_mdf(mdf, cluster, scheduler="bas", memory="amm", config=config).completion_time

    full = run_variant(Threshold(0.8, above=True))
    top4 = run_variant(TopK(4, largest=True))
    first4 = run_variant(KThreshold(4, 0.8, above=True))
    randoms = [
        run_variant(KThreshold(4, 0.8, above=True), hint=RandomHint(seed))
        for seed in range(random_runs)
    ]
    sorted_eval = RatioEvaluator(trace_n, monotone=True, name="surviving-ratio")
    first4_sorted = run_variant(
        KThreshold(4, 0.8, above=True), evaluator=sorted_eval, hint=SortedHint()
    )
    rows = [
        ["MDF (all branches)", full, "-"],
        ["MDF (top-4)", top4, f"{improvement(full, top4):.0f}% vs full"],
        ["MDF (first-4)", first4, f"{improvement(full, first4):.0f}% vs full"],
        [
            "MDF (first-4, random)",
            float(np.mean(randoms)),
            f"min {min(randoms):.2f} / max {max(randoms):.2f}",
        ],
        ["MDF (first-4, sorted)", first4_sorted, f"{improvement(full, first4_sorted):.0f}% vs full"],
    ]
    checks = {
        "top-4 beats full MDF by >=15%": improvement(full, top4) >= 15.0,
        "first-4 beats top-4": first4 <= top4,
        "random max below full": max(randoms) <= full,
        "sorted at least as good as avg random": first4_sorted <= float(np.mean(randoms)) * 1.05,
    }
    return FigureResult(
        "Fig. 8",
        "choose functions and scheduling hints (time series job)",
        ["variant", "completion (s)", "notes"],
        rows,
        checks,
        note="paper: top-4 -34..39% vs full; first-4 stronger; sorted hints consistent",
    )


# --------------------------------------------------------------------- Fig 9


def fig9_spark_comparison(
    branch_factors: Sequence[int] = (2, 4, 6, 10),
    pairs_n: int = 3000,
    workers: int = 8,
    mem_per_worker: int = 1 * GB,
    nominal_bytes: int = int(2.5 * GB),
) -> FigureResult:
    """Fig. 9: MDF vs Spark-like baselines on the synthetic job."""
    pairs = string_int_pairs(pairs_n)
    cluster = Cluster(workers, mem_per_worker)
    config = EngineConfig(partitions_per_worker=2)
    rows: List[List[Any]] = []
    for bf in branch_factors:
        mdf = synthetic_mdf(pairs, b1=bf, b2=bf, nominal_bytes=nominal_bytes)
        jobs = [
            synthetic_job(pairs, p, nominal_bytes=nominal_bytes)
            for p in synthetic_combinations(bf, bf)
        ]
        seq = spark_sequential(jobs, cluster).completion_time
        yarn = spark_yarn(jobs, cluster, k=4).completion_time
        cache = spark_cache(mdf, cluster).completion_time
        bfs = seep_bfs(mdf, cluster, config=config).completion_time
        mdf_t = seep_mdf(mdf, cluster, config=config).completion_time
        rows.append([bf * bf, seq, yarn, cache, bfs, mdf_t])
    big = rows[-1]
    checks = {
        "spark-sequential worst at scale": big[1] == max(big[1:6]),
        "seep-mdf best at scale": big[5] == min(big[1:6]),
        "seep-mdf beats yarn by >=40%": improvement(big[2], big[5]) >= 40.0,
        "seep-mdf beats spark-cache": big[5] < big[3],
        "seep-bfs worse than spark-cache": big[4] > big[3],
    }
    return FigureResult(
        "Fig. 9",
        "synthetic job vs Spark-like baselines",
        ["branches", "spark-seq", "spark-yarn", "spark-cache", "seep-bfs", "seep-mdf"],
        rows,
        checks,
        note="paper @100 branches: MDF -69% vs YARN, -37% vs cache; BFS worse than cache",
    )


# ------------------------------------------------------------ Figs 10-18


def _four_configs(
    mdf, workers: int, mem_per_worker: int, ppw: int = 2
) -> Dict[str, Any]:
    """Run the four §6.2 configurations: {LRU, AMM} × {±incremental}."""
    out = {}
    for policy in ("lru", "amm"):
        for inc in (False, True):
            cluster = Cluster(workers, mem_per_worker)
            config = EngineConfig(incremental_choose=inc, partitions_per_worker=ppw)
            result = run_mdf(mdf, cluster, scheduler="bas", memory=policy, config=config)
            label = policy + ("+incr" if inc else "")
            out[label] = result
    return out


CONFIG_LABELS = ["lru", "lru+incr", "amm", "amm+incr"]


def fig10_13_scale_workers(
    worker_counts: Sequence[int] = (2, 4, 8, 12),
    per_worker_gb: float = 4.0,
    mem_per_worker: int = 10 * GB,
    pairs_n: int = 2000,
) -> FigureResult:
    """Figs. 10+13: processing rate and memory-hit ratio vs #workers.

    Input grows with the cluster (constant per-worker data), so the figure
    reports the processing *rate* (GB/s) like the paper.
    """
    pairs = string_int_pairs(pairs_n)
    rows: List[List[Any]] = []
    for workers in worker_counts:
        nominal = int(workers * per_worker_gb * GB)
        mdf = synthetic_mdf(pairs, b1=4, b2=4, nominal_bytes=nominal)
        results = _four_configs(mdf, workers, mem_per_worker)
        row: List[Any] = [workers]
        for label in CONFIG_LABELS:
            rate = (nominal / GB) / results[label].completion_time
            row.append(rate)
        for label in CONFIG_LABELS:
            row.append(results[label].memory_hit_ratio)
        rows.append(row)
    best_rates = {label: [] for label in CONFIG_LABELS}
    for row in rows:
        for i, label in enumerate(CONFIG_LABELS):
            best_rates[label].append(row[1 + i])
    hit_cols = {
        label: [row[5 + i] for row in rows] for i, label in enumerate(CONFIG_LABELS)
    }
    checks = {
        "amm+incr fastest rate": all(
            row[4] >= max(row[1:5]) - 1e-9 for row in rows
        ),
        "incremental beats non-incremental": all(
            row[2] >= row[1] and row[4] >= row[3] for row in rows
        ),
        "hit ratio roughly flat vs workers": all(
            (max(v) - min(v)) <= 0.15 for v in hit_cols.values()
        ),
    }
    return FigureResult(
        "Figs. 10+13",
        "scalability vs workers: rate (GB/s) and memory-hit ratio",
        ["workers"]
        + [f"rate:{label}" for label in CONFIG_LABELS]
        + [f"hit:{label}" for label in CONFIG_LABELS],
        rows,
        checks,
        note="paper: amm+incr best; hit ratio unaffected by worker count",
    )


def fig11_14_scale_data(
    per_worker_gb: Sequence[float] = (2, 4, 6, 8, 9),
    workers: int = 8,
    mem_per_worker: int = 10 * GB,
    pairs_n: int = 2000,
) -> FigureResult:
    """Figs. 11+14: completion time and hit ratio vs dataset size."""
    pairs = string_int_pairs(pairs_n)
    rows: List[List[Any]] = []
    for size in per_worker_gb:
        nominal = int(workers * size * GB)
        mdf = synthetic_mdf(pairs, b1=4, b2=4, nominal_bytes=nominal)
        results = _four_configs(mdf, workers, mem_per_worker)
        row: List[Any] = [size]
        row.extend(results[label].completion_time for label in CONFIG_LABELS)
        row.extend(results[label].memory_hit_ratio for label in CONFIG_LABELS)
        rows.append(row)
    amm_incr_hits = [row[8] for row in rows]
    checks = {
        "amm+incr fastest at every size (5% tol)": all(
            row[4] <= min(row[1:5]) * 1.05 for row in rows
        ),
        "completion grows with size": all(
            rows[i + 1][4] > rows[i][4] for i in range(len(rows) - 1)
        ),
        "hit ratio decreases then flattens": amm_incr_hits[0] > amm_incr_hits[-1],
        "amm+incr hit ratio >= lru hit ratio": all(row[8] >= row[5] - 0.05 for row in rows),
    }
    return FigureResult(
        "Figs. 11+14",
        "completion time and hit ratio vs per-worker dataset size (GB)",
        ["GB/worker"]
        + [f"time:{label}" for label in CONFIG_LABELS]
        + [f"hit:{label}" for label in CONFIG_LABELS],
        rows,
        checks,
        note="paper: amm+incr best; hit ratio decreases up to ~6GB then constant",
    )


def fig12_15_topology(
    factor_pairs: Sequence[Tuple[int, int]] = ((2, 60), (4, 30), (6, 20), (10, 12), (12, 10), (20, 6), (30, 4), (60, 2)),
    workers: int = 8,
    mem_per_worker: int = 4 * GB,
    nominal_bytes: int = 8 * GB,
    pairs_n: int = 1000,
) -> FigureResult:
    """Figs. 12+15: 120 branches split across outer × inner explores."""
    pairs = string_int_pairs(pairs_n)
    rows: List[List[Any]] = []
    for b1, b2 in factor_pairs:
        assert b1 * b2 == 120, "the paper fixes |B1 x B2| = 120"
        mdf = synthetic_mdf(pairs, b1=b1, b2=b2, nominal_bytes=nominal_bytes)
        results = _four_configs(mdf, workers, mem_per_worker)
        row: List[Any] = [f"{b1}x{b2}"]
        row.extend(results[label].completion_time for label in CONFIG_LABELS)
        row.extend(results[label].memory_hit_ratio for label in CONFIG_LABELS)
        rows.append(row)
    low_outer, high_outer = rows[0], rows[-1]
    checks = {
        # incremental strongest when inner branching is high (outer low)
        "incremental gain at low outer >= at high outer": (
            improvement(low_outer[1], low_outer[2])
            >= improvement(high_outer[1], high_outer[2]) - 5.0
        ),
        "amm never loses to lru (incr)": all(row[4] <= row[2] * 1.10 for row in rows),
        "amm+incr best overall": all(row[4] <= min(row[1:5]) * 1.05 for row in rows),
    }
    return FigureResult(
        "Figs. 12+15",
        "120-branch topology: completion time and hit ratio vs B1 x B2",
        ["B1xB2"]
        + [f"time:{label}" for label in CONFIG_LABELS]
        + [f"hit:{label}" for label in CONFIG_LABELS],
        rows,
        checks,
        note="paper: incremental shines at low outer factor; AMM at high outer factor",
    )


def fig16_cpu_cost(
    work_levels: Sequence[int] = (1, 2, 4, 8, 16),
    workers: int = 8,
    mem_per_worker: int = 10 * GB,
    per_worker_gb: float = 6.0,
    pairs_n: int = 1000,
) -> FigureResult:
    """Fig. 16: relative completion time vs branch processing cost."""
    pairs = string_int_pairs(pairs_n)
    nominal = int(workers * per_worker_gb * GB)
    rows: List[List[Any]] = []
    for work in work_levels:
        mdf = synthetic_mdf(pairs, b1=5, b2=5, work=work, nominal_bytes=nominal)
        results = _four_configs(mdf, workers, mem_per_worker)
        lru = results["lru"].completion_time
        row = [work] + [results[label].completion_time / lru for label in CONFIG_LABELS]
        rows.append(row)
    first, last = rows[0], rows[-1]
    checks = {
        "amm+incr best at low cost (2% tol)": first[4] <= min(first[1:5]) * 1.02,
        "relative benefit shrinks as compute grows": (1.0 - last[4]) <= (1.0 - first[4]) + 0.02,
        "incremental dominates at low cost": first[2] < first[1] and first[4] < first[3],
    }
    return FigureResult(
        "Fig. 16",
        "relative completion time vs processing cost (normalised to LRU)",
        ["work/item"] + CONFIG_LABELS,
        rows,
        checks,
        note="paper: amm+incr best; benefit shrinks as the job becomes compute-bound",
    )


def fig17_18_memory(
    mem_levels_gb: Sequence[float] = (2, 4, 6, 8, 12, 16, 24, 32),
    workers: int = 8,
    per_worker_gb: float = 3.0,
    pairs_n: int = 1000,
) -> FigureResult:
    """Figs. 17+18: normalised completion time and hit ratio vs memory."""
    pairs = string_int_pairs(pairs_n)
    nominal = int(workers * per_worker_gb * GB)
    mdf = synthetic_mdf(pairs, b1=5, b2=5, nominal_bytes=nominal)
    rows: List[List[Any]] = []
    for mem in mem_levels_gb:
        results = _four_configs(mdf, workers, int(mem * GB))
        lru = results["lru"].completion_time
        row: List[Any] = [mem]
        row.extend(results[label].completion_time / lru for label in CONFIG_LABELS)
        row.extend(results[label].memory_hit_ratio for label in CONFIG_LABELS)
        rows.append(row)
    first, mid, last = rows[0], rows[len(rows) // 2], rows[-1]
    checks = {
        "amm+incr best when memory is scarce": first[4] <= min(first[1:5]) + 1e-9,
        # with ample memory every policy approaches LRU (ratio -> 1)
        "relative advantage shrinks with memory": last[4] >= mid[4] - 0.05,
        "hit ratios rise with memory (amm+incr)": last[8] >= first[8],
        "lru hit ratio rises with memory": last[5] >= first[5],
        "hit ratios approach 1 with ample memory": last[5] >= 0.9 and last[8] >= 0.9,
    }
    return FigureResult(
        "Figs. 17+18",
        "normalised completion time and hit ratio vs worker memory (GB)",
        ["mem GB"]
        + [f"t/lru:{label}" for label in CONFIG_LABELS]
        + [f"hit:{label}" for label in CONFIG_LABELS],
        rows,
        checks,
        note="paper: amm+incr strongest at low memory; all converge as hit ratios reach 1",
    )


# ------------------------------------------------------------- §5 & App. B


def choose_throughput(seconds: float = 0.4) -> FigureResult:
    """§5 claim: the master sustains millions of choose invocations/s."""
    selection = TopK(4)
    selector = selection.incremental()
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < seconds:
        for _ in range(1000):
            selector.offer(f"b{count}", float(count % 97))
            count += 1
    elapsed = time.perf_counter() - start
    rate = count / elapsed
    rows = [["top-4 incremental selection", count, elapsed, rate]]
    checks = {"rate >= 100k invocations/s": rate >= 1e5}
    return FigureResult(
        "§5",
        "master-side selection throughput (wall clock)",
        ["selection", "invocations", "seconds", "rate (1/s)"],
        rows,
        checks,
        note="paper: 2M invocations/s on a low-end master (JVM)",
    )


def failure_recovery(
    thresholds: Sequence[int] = (10, 50, 100, 500, 900),
    workers: int = 4,
    mem_per_worker: int = 1 * GB,
    nominal_bytes: int = 64 * MB,
    data_n: int = 1000,
    failure_stage: int = 4,
    failed_node: str = "worker-0",
) -> FigureResult:
    """§5: one mid-explore node failure vs failure-free execution.

    Crosses LRU/AMM with checkpointing on/off.  Each failed run must
    finish strictly later than its failure-free twin by *exactly* the
    seconds charged into the ``recovery_seconds`` histogram (reloads and
    lineage recomputes are paid through the cost model, nothing else
    moves), and the master's :class:`ChooseScoreStore` must keep every
    branch score — failures never re-run a choose evaluation.
    """

    def make_mdf():
        builder = MDFBuilder("failure-recovery")
        src = builder.read_data(
            list(range(data_n)), name="src", nominal_bytes=nominal_bytes
        )
        result = src.explore(
            {"threshold": list(thresholds)},
            lambda pipe, p: pipe.transform(
                lambda xs, t=p["threshold"]: [x for x in xs if x < t],
                name=f"filter-{p['threshold']}",
            ),
            name="explore",
        ).choose(CallableEvaluator(len, name="count"), Min(), name="choose-min")
        result.write(name="out")
        return builder.build()

    rows: List[List[Any]] = []
    slower: List[bool] = []
    exact: List[bool] = []
    scores_kept: List[bool] = []
    ckpt_reexecutions: List[int] = []
    for memory in ("lru", "amm"):
        for ckpt_on in (False, True):
            ckpt = (
                CheckpointConfig(1, overhead_fraction=0.1) if ckpt_on else None
            )
            mdf = make_mdf()
            clean = run_mdf(
                mdf,
                Cluster(workers, mem_per_worker),
                memory=memory,
                config=EngineConfig(checkpointing=ckpt),
            )
            cluster = Cluster(workers, mem_per_worker)
            failed = run_mdf(
                mdf,
                cluster,
                memory=memory,
                config=EngineConfig(
                    checkpointing=ckpt,
                    failures=FailureInjector.at_stages(
                        [(failure_stage, failed_node)]
                    ),
                ),
            )
            charged = cluster.obs.value("recovery_seconds")
            delta = failed.completion_time - clean.completion_time
            rows.append(
                [
                    f"{memory}, ckpt {'on' if ckpt_on else 'off'}",
                    clean.completion_time,
                    failed.completion_time,
                    delta,
                    charged,
                    failed.metrics.recovery_reexecutions,
                ]
            )
            slower.append(delta > 0)
            exact.append(abs(delta - charged) < 1e-9)
            scores_kept.append(
                failed.metrics.choose_evaluations
                == clean.metrics.choose_evaluations
                == len(thresholds)
            )
            if ckpt_on:
                ckpt_reexecutions.append(failed.metrics.recovery_reexecutions)
    checks = {
        "every failed run finishes strictly later": all(slower),
        "delta == charged recovery seconds (exactness)": all(exact),
        "choose scores never recomputed": all(scores_kept),
        "checkpointing recovers by reload, not recompute": all(
            n == 0 for n in ckpt_reexecutions
        ),
    }
    return FigureResult(
        "§5",
        "mid-explore node failure: recovery cost vs failure-free",
        [
            "config",
            "clean (s)",
            "failed (s)",
            "delta (s)",
            "recovery charged (s)",
            "re-executions",
        ],
        rows,
        checks,
        note="failures are cheap but not free: the delta is exactly the charged recovery",
    )


def appendix_b_counts(
    configs: Sequence[Tuple[int, int]] = ((2, 2), (2, 4), (3, 3), (4, 2), (10, 3)),
) -> FigureResult:
    """Appendix B / Theorem 4.3: DFS maintains <= datasets than BFS."""
    rows: List[List[Any]] = []
    for branching, depth in configs:
        mdf = CollapsedMDF(branching, depth)
        dfs = mdf.peak_datasets("dfs")
        bfs = mdf.peak_datasets("bfs")
        rows.append([branching, depth, dfs, bfs, bfs / dfs])
    checks = {
        "dfs peak <= bfs peak everywhere": all(row[2] <= row[3] for row in rows),
        "gap grows with breadth and depth": rows[-1][4] >= rows[0][4],
    }
    return FigureResult(
        "App. B",
        "peak maintained datasets: depth-first vs breadth-first",
        ["B", "depth", "DFS peak", "BFS peak", "BFS/DFS"],
        rows,
        checks,
        note="Theorem 4.3: BFS maintains at least as many datasets as DFS",
    )


def supplementary_full_time_series(
    trace_n: int = 20_000,
    workers: int = 8,
    mem_per_worker: int = 2 * GB,
    nominal_bytes: int = 128 * MB,
) -> FigureResult:
    """Supplementary: the §6.1 time-series job with *all five* explorables.

    The paper's Fig. 22 listing only fans out the masking parameters; its
    prose sweeps five explorables (W, T, L, M, D).  This experiment chains
    three scopes (mask -> mark -> detect) and compares against submitting
    one concrete job per full combination — the reuse gap compounds with
    each chained scope.
    """
    trace = oil_well_trace(trace_n)
    grid = granularity_grid(16)
    mark_windows, mark_magnitudes = (3, 5, 8), (1.0, 2.0, 4.0)
    durations = (1_000.0, 2_000.0, 5_000.0)
    cluster = Cluster(workers, mem_per_worker)
    mdf = time_series_full_mdf(
        trace,
        grid,
        mark_windows=mark_windows,
        mark_magnitudes=mark_magnitudes,
        durations=durations,
        nominal_bytes=nominal_bytes,
    )
    result = seep_mdf(mdf, cluster)
    branches_executed = result.metrics.branches_executed
    # the baseline must run the full cross product of all five explorables
    full_combinations = (
        grid.num_branches * len(mark_windows) * len(mark_magnitudes) * len(durations)
    )
    # estimate the sequential family from one representative job per stage mix
    jobs = [
        time_series_job(trace, p, grid, nominal_bytes=nominal_bytes)
        for p in time_series_combinations(grid)
    ]
    per_job = run_sequential(jobs, cluster).completion_time / len(jobs)
    sequential_estimate = per_job * full_combinations
    rows = [
        [
            "sequential (estimated)",
            full_combinations,
            sequential_estimate,
            "-",
        ],
        [
            "MDF (chained scopes)",
            branches_executed,
            result.completion_time,
            f"{improvement(sequential_estimate, result.completion_time):.1f}% vs seq",
        ],
    ]
    checks = {
        "MDF explores additively, not multiplicatively": branches_executed
        <= grid.num_branches + 9 + 3,
        "MDF at least 95% faster than the full cross product": improvement(
            sequential_estimate, result.completion_time
        )
        >= 95.0,
    }
    return FigureResult(
        "Suppl.",
        "five-explorable time series: chained scopes vs full cross product",
        ["approach", "branches", "completion (s)", "notes"],
        rows,
        checks,
        note="the chained-scope MDF turns a 16*9*3=432-way product into 16+9+3 branches",
    )


def cache_reuse(
    branch_count: int = 16,
    trace_n: int = 8_000,
    workers: int = 4,
    mem_per_worker: int = 2 * GB,
    nominal_bytes: int = 128 * MB,
) -> FigureResult:
    """Result-cache reuse: warm re-runs of the time-series exploration.

    A cold run populates a :class:`~repro.cache.ResultCache`; an identical
    warm re-run on the same cluster (``reset=False``) then serves the
    source, the surviving branch tails and the post-choose stages from
    cache instead of re-executing them.  Pruning is off because a warm
    re-run legitimately revisits stage ids the pruning validator would
    otherwise flag as reused.
    """
    from ..cache import ResultCache
    from ..trace import validate_trace

    trace = oil_well_trace(trace_n)
    grid = granularity_grid(branch_count)
    rows: List[List[Any]] = []
    reductions: List[float] = []
    warm_hit_counts: List[int] = []
    outputs_match: List[bool] = []
    violation_counts: List[int] = []
    disabled_match: List[bool] = []
    for label, incremental in (("incremental", True), ("materialized", False)):

        def make_mdf():
            return time_series_mdf(
                trace, grid, selection=TopK(4, largest=True), nominal_bytes=nominal_bytes
            )

        def make_config(cache):
            return EngineConfig(
                pruning=False, incremental_choose=incremental, cache=cache
            )

        # reference run without any cache: the cold cached run must cost
        # exactly the same simulated time (the cache never slows a job)
        baseline = run_mdf(
            make_mdf(),
            Cluster(workers, mem_per_worker),
            scheduler="bas",
            memory="amm",
            config=make_config(None),
        ).completion_time
        cluster = Cluster(workers, mem_per_worker)
        cache = ResultCache()
        config = make_config(cache)
        cold_result = run_mdf(
            make_mdf(), cluster, scheduler="bas", memory="amm", config=config
        )
        cold = cold_result.completion_time
        hits_before = cache.stats.hits
        warm_result = run_mdf(
            make_mdf(),
            cluster,
            scheduler="bas",
            memory="amm",
            config=config,
            reset=False,
        )
        warm = warm_result.completion_time - cold
        warm_hits = cache.stats.hits - hits_before
        reduction = improvement(cold, warm)
        reductions.append(reduction)
        warm_hit_counts.append(warm_hits)
        outputs_match.append(repr(cold_result.outputs) == repr(warm_result.outputs))
        violation_counts.append(len(validate_trace(warm_result.events)))
        disabled_match.append(abs(cold - baseline) < 1e-9)
        rows.append(
            [
                label,
                cold,
                warm,
                f"{reduction:.1f}%",
                warm_hits,
                cache.stats.bytes_saved // MB,
            ]
        )
    checks = {
        "warm re-run >=25% faster (both modes)": all(r >= 25.0 for r in reductions),
        "warm re-runs hit the cache": all(h > 0 for h in warm_hit_counts),
        "outputs byte-identical cold vs warm": all(outputs_match),
        "paper invariants + cache_sound hold": all(v == 0 for v in violation_counts),
        "cold cached run costs the same as cache-off": all(disabled_match),
    }
    return FigureResult(
        "Cache",
        "lineage-fingerprint result cache: cold vs warm re-run (time series)",
        ["choose mode", "cold (s)", "warm (s)", "reduction", "warm hits", "MB saved"],
        rows,
        checks,
        note="warm re-runs reuse the source, surviving tails and post-choose stages",
    )


ALL_FIGURES: Dict[str, Callable[[], FigureResult]] = {
    "table1": table1_optimizations,
    "fig5": fig5_deep_learning,
    "fig6": fig6_data_profiling,
    "fig7": fig7_time_series,
    "fig8": fig8_choose_variants,
    "fig9": fig9_spark_comparison,
    "fig10_13": fig10_13_scale_workers,
    "fig11_14": fig11_14_scale_data,
    "fig12_15": fig12_15_topology,
    "fig16": fig16_cpu_cost,
    "fig17_18": fig17_18_memory,
    "choose_throughput": choose_throughput,
    "failure_recovery": failure_recovery,
    "appendix_b": appendix_b_counts,
    "supplementary_ts5": supplementary_full_time_series,
    "cache_reuse": cache_reuse,
}
