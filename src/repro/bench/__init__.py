"""Benchmark harness regenerating every table and figure of §6."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    appendix_b_counts,
    choose_throughput,
    fig5_deep_learning,
    fig6_data_profiling,
    fig7_time_series,
    fig8_choose_variants,
    fig9_spark_comparison,
    fig10_13_scale_workers,
    fig11_14_scale_data,
    fig12_15_topology,
    fig16_cpu_cost,
    fig17_18_memory,
    supplementary_full_time_series,
    table1_optimizations,
)
from .report import (
    improvement,
    render_table,
    rows_to_dict,
    telemetry_breakdown,
    timeline_table,
)
from .telemetry import telemetry_report

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "appendix_b_counts",
    "choose_throughput",
    "fig5_deep_learning",
    "fig6_data_profiling",
    "fig7_time_series",
    "fig8_choose_variants",
    "fig9_spark_comparison",
    "fig10_13_scale_workers",
    "fig11_14_scale_data",
    "fig12_15_topology",
    "fig16_cpu_cost",
    "fig17_18_memory",
    "improvement",
    "render_table",
    "rows_to_dict",
    "supplementary_full_time_series",
    "table1_optimizations",
    "telemetry_breakdown",
    "telemetry_report",
    "timeline_table",
]
