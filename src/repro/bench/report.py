"""Text rendering for benchmark tables (paper-style rows)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(columns[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(columns[i]))
        for i in range(len(columns))
    ]
    lines = []
    lines.append("=" * max(len(title), sum(widths) + 2 * len(widths)))
    lines.append(title)
    lines.append("-" * max(len(title), sum(widths) + 2 * len(widths)))
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    lines.append("")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def improvement(base: float, new: float) -> float:
    """Relative improvement of ``new`` over ``base`` in percent.

    A non-positive baseline makes the ratio meaningless, so the result is
    NaN (rendered as ``-`` by the tables) rather than a fake 0%.
    """
    if base <= 0:
        return float("nan")
    return 100.0 * (1.0 - new / base)


def rows_to_dict(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[Dict[str, Any]]:
    """Rows as dictionaries, for pytest-benchmark ``extra_info``."""
    return [dict(zip(columns, row)) for row in rows]


# --------------------------------------------------------------- telemetry
#: instrument -> column header for the breakdown tables; bytes columns are
#: summed across memory/disk tiers, time across io/compute
_BREAKDOWN_COLUMNS = (
    ("tasks", ("tasks_executed",)),
    ("evictions", ("evictions",)),
    ("bytes read", ("bytes_read_memory", "bytes_read_disk")),
    ("bytes written", ("bytes_written_memory", "bytes_written_disk")),
    ("time (s)", ("time_io", "time_compute")),
)


def telemetry_breakdown(registry, dim: str) -> str:
    """Per-``dim`` (branch/node/stage/...) attribution table.

    Every row is one value of the chosen label dimension; the unlabeled
    remainder (observations with no ``dim`` label, e.g. scheduling overhead
    for a branch breakdown) appears as ``(unattributed)``.  Column totals
    equal the job-global :class:`~repro.cluster.metrics.Metrics` by
    construction — the registry is the single source of both.
    """
    keys: set = set()
    per_column: List[Dict[str, float]] = []
    for _, instruments in _BREAKDOWN_COLUMNS:
        merged: Dict[str, float] = {}
        for name in instruments:
            for key, amount in registry.aggregate(name, (dim,)).items():
                merged[key[0]] = merged.get(key[0], 0.0) + amount
        per_column.append(merged)
        keys.update(merged)

    def label_of(key: str) -> str:
        return key if key else "(unattributed)"

    rows: List[List[Any]] = []
    for key in sorted(keys):
        rows.append([label_of(key)] + [col.get(key, 0.0) for col in per_column])
    rows.append(["total"] + [sum(col.values()) for col in per_column])
    columns = [dim] + [header for header, _ in _BREAKDOWN_COLUMNS]
    return render_table(f"telemetry breakdown by {dim}", columns, rows)


def timeline_table(samples: Sequence[Any], max_rows: int = 24) -> str:
    """The Fig 17-style memory-over-time series as a text table.

    When the series is longer than ``max_rows`` it is decimated evenly
    (first and last samples always kept) — the table is for eyeballing the
    LRU-vs-AMM shape, not for plotting.
    """
    shown = list(samples)
    if max_rows >= 2 and len(shown) > max_rows:
        step = (len(shown) - 1) / (max_rows - 1)
        shown = [shown[round(i * step)] for i in range(max_rows)]
    rows = [
        [
            s.t,
            s.memory_in_use,
            s.memory_capacity,
            s.hit_ratio,
            s.live_branches,
            s.live_datasets,
            s.evictions,
        ]
        for s in shown
    ]
    note = None
    if len(shown) < len(samples):
        note = f"showing {len(shown)} of {len(samples)} samples"
    return render_table(
        "timeline (memory over simulated time)",
        ["t (s)", "mem in use", "capacity", "hit ratio", "branches", "datasets", "evictions"],
        rows,
        note=note,
    )
