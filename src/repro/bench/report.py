"""Text rendering for benchmark tables (paper-style rows)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(columns[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(columns[i]))
        for i in range(len(columns))
    ]
    lines = []
    lines.append("=" * max(len(title), sum(widths) + 2 * len(widths)))
    lines.append(title)
    lines.append("-" * max(len(title), sum(widths) + 2 * len(widths)))
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    lines.append("")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def improvement(base: float, new: float) -> float:
    """Relative improvement of ``new`` over ``base`` in percent."""
    if base <= 0:
        return 0.0
    return 100.0 * (1.0 - new / base)


def rows_to_dict(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[Dict[str, Any]]:
    """Rows as dictionaries, for pytest-benchmark ``extra_info``."""
    return [dict(zip(columns, row)) for row in rows]
