"""Command-line entry: ``python -m repro.bench [--validate] [--telemetry]
[--wallclock] [figure ...]``.

Regenerates the requested tables/figures (all of them by default),
printing the paper-style rows and the shape-check verdicts.  With
``--validate``, every ``run_mdf`` call performed while building the
figures additionally runs the paper-invariant trace validators
(:mod:`repro.trace.validate`) and aborts on the first violation.  With
``--telemetry``, prints the observability demo report (Fig 17-style
timelines, per-branch/node attribution, Prometheus and JSON expositions)
— on its own it replaces the figure run.  With ``--wallclock``, runs the
result-cache cold/warm wall-clock microbenchmark and writes
``BENCH_pr4.json`` — on its own it replaces the figure run.
"""

from __future__ import annotations

import sys

from ..trace.validate import set_auto_validate
from .figures import ALL_FIGURES


def main(argv) -> int:
    argv = list(argv)
    validate = "--validate" in argv
    if validate:
        argv = [a for a in argv if a != "--validate"]
    telemetry = "--telemetry" in argv
    if telemetry:
        argv = [a for a in argv if a != "--telemetry"]
        from .telemetry import telemetry_report

        print(telemetry_report())
        if not argv:
            return 0
    wallclock = "--wallclock" in argv
    if wallclock:
        argv = [a for a in argv if a != "--wallclock"]
        from .wallclock import render_wallclock, run_wallclock

        report = run_wallclock()
        print(render_wallclock(report))
        print("wrote BENCH_pr4.json")
        if report["wall_reduction_pct_overall"] <= 0.0:
            print("wall-clock regression: warm run was not faster")
            return 1
        if not argv:
            return 0
    names = argv or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}")
        print(f"available: {', '.join(ALL_FIGURES)}")
        return 2
    if validate:
        set_auto_validate(True)
        print("trace validation: on (every run checked against the paper invariants)")
    failed = []
    try:
        for name in names:
            result = ALL_FIGURES[name]()
            print(result.render())
            if not result.all_checks_pass:
                failed.append(name)
    finally:
        if validate:
            set_auto_validate(False)
    if failed:
        print(f"shape-check failures: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
