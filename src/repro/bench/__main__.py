"""Command-line entry: ``python -m repro.bench [--validate] [--telemetry]
[--wallclock] [--wallclock-backends] [--loadgen] [figure ...]``.

Regenerates the requested tables/figures (all of them by default),
printing the paper-style rows and the shape-check verdicts.  With
``--validate``, every ``run_mdf`` call performed while building the
figures additionally runs the paper-invariant trace validators
(:mod:`repro.trace.validate`) and aborts on the first violation.  With
``--telemetry``, prints the observability demo report (Fig 17-style
timelines, per-branch/node attribution, Prometheus and JSON expositions)
— on its own it replaces the figure run.  With ``--wallclock``, runs the
result-cache cold/warm wall-clock microbenchmark and writes
``BENCH_pr4.json`` — on its own it replaces the figure run.  With
``--wallclock-backends``, runs the serial-vs-mp execution-backend
comparison on the compute-dominated figures and writes ``BENCH_pr8.json``
— on its own it replaces the figure run, and any simulated divergence
between the backends fails the bench.  With ``--loadgen`` (or the
CI-sized ``--loadgen-quick``), drives the multi-tenant job service with
a mixed-tenant load and writes ``BENCH_pr10.json`` (per-tenant fairness
shares, SLO attainment, replay-parity verdicts included) — on its own
it replaces the figure run, and any solo-run identity breach, validator
violation, missing cross-tenant reuse, service replay-parity mismatch
or fairness alert fails the bench.  With
``--profile``, every figure run is profiled (:mod:`repro.prof`): a
per-figure makespan-attribution table is printed after each figure and a
speedscope flamegraph of each figure's longest run is written to
``PROFILE_<figure>.speedscope.json``.  With ``--live``, every figure run
streams its trace through :mod:`repro.live` (progress/ETA estimator +
watchdogs): the stream/batch byte-identity verdict, final progress line
and alert summary are printed per figure and the longest run's NDJSON is
written to ``LIVE_<figure>.ndjson``; a byte-identity mismatch fails the
bench.
"""

from __future__ import annotations

import sys

from ..trace.validate import set_auto_validate
from .figures import ALL_FIGURES


def main(argv) -> int:
    argv = list(argv)
    validate = "--validate" in argv
    if validate:
        argv = [a for a in argv if a != "--validate"]
    telemetry = "--telemetry" in argv
    if telemetry:
        argv = [a for a in argv if a != "--telemetry"]
        from .telemetry import telemetry_report

        print(telemetry_report())
        if not argv:
            return 0
    wallclock = "--wallclock" in argv
    if wallclock:
        argv = [a for a in argv if a != "--wallclock"]
        from .wallclock import render_wallclock, run_wallclock

        report = run_wallclock()
        print(render_wallclock(report))
        print("wrote BENCH_pr4.json")
        if report["wall_reduction_pct_overall"] <= 0.0:
            print("wall-clock regression: warm run was not faster")
            return 1
        if not argv:
            return 0
    loadgen = "--loadgen" in argv or "--loadgen-quick" in argv
    if loadgen:
        quick = "--loadgen-quick" in argv
        argv = [a for a in argv if a not in ("--loadgen", "--loadgen-quick")]
        from .loadgen import render_loadgen, run_loadgen

        if quick:  # CI-sized: 2 tenants, smoke-scale job counts
            report = run_loadgen(
                tenants=(2,), jobs_per_tenant=2, overlaps=(0.0, 1.0)
            )
        else:
            report = run_loadgen()
        print(render_loadgen(report))
        print("wrote BENCH_pr10.json")
        if not report["ok"]:
            print(
                "loadgen failure: identity breach, validator violation, "
                "no cross-tenant reuse, replay-parity mismatch, or "
                "fairness alert"
            )
            return 1
        if not argv:
            return 0
    wallclock_backends = "--wallclock-backends" in argv
    if wallclock_backends:
        argv = [a for a in argv if a != "--wallclock-backends"]
        from .parallel import render_backend_wallclock, run_backend_wallclock

        report = run_backend_wallclock()
        print(render_backend_wallclock(report))
        print("wrote BENCH_pr8.json")
        if not report["all_identical"]:
            print("backend identity violation: mp diverged from serial")
            return 1
        if not argv:
            return 0
    profile = "--profile" in argv
    if profile:
        argv = [a for a in argv if a != "--profile"]
    live = "--live" in argv
    if live:
        argv = [a for a in argv if a != "--live"]
    names = argv or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}")
        print(f"available: {', '.join(ALL_FIGURES)}")
        return 2
    if validate:
        set_auto_validate(True)
        print("trace validation: on (every run checked against the paper invariants)")
    if profile:
        print(
            "profiling: on (per-figure attribution tables + "
            "PROFILE_<figure>.speedscope.json artifacts)"
        )
    if live:
        print(
            "live monitoring: on (every run streams its trace through "
            "repro.live; LIVE_<figure>.ndjson artifacts)"
        )
    failed = []
    try:
        for name in names:
            collector = _install_collector() if profile else None
            hook = _install_live_hook() if live else None
            try:
                result = ALL_FIGURES[name]()
            finally:
                if collector is not None:
                    _uninstall_collector()
                if hook is not None:
                    _uninstall_live_hook()
            print(result.render())
            if collector is not None:
                _report_profile(name, collector)
            if hook is not None and not _report_live(name, hook):
                failed.append(f"{name} (live)")
            if not result.all_checks_pass:
                failed.append(name)
    finally:
        if validate:
            set_auto_validate(False)
    if failed:
        print(f"shape-check failures: {failed}")
        return 1
    return 0


def _install_collector():
    from ..prof import ProfileCollector, set_profile_collector

    collector = ProfileCollector()
    set_profile_collector(collector)
    return collector


def _uninstall_collector() -> None:
    from ..prof import set_profile_collector

    set_profile_collector(None)


def _install_live_hook():
    from ..live import LiveHook, set_live_hook

    hook = LiveHook()
    set_live_hook(hook)
    return hook


def _uninstall_live_hook() -> None:
    from ..live import set_live_hook

    set_live_hook(None)


def _report_live(figure: str, hook) -> bool:
    """One figure's live verdicts: byte-identity, final progress, alerts.

    Returns False (a failure) when any run's streamed NDJSON differed
    from its post-hoc export — the live layer's core contract.  Alerts
    are reported but not failed here (fault-injection figures alert by
    design); CI's live-smoke job asserts "alerts: none" on a clean
    figure via the printed line.  The longest run's stream is written to
    ``LIVE_<figure>.ndjson`` as the artifact.
    """
    if not hook.runs:
        print(f"[live] {figure}: no monitored runs")
        return True
    identical = hook.all_byte_identical
    print(
        f"[live] {figure}: {len(hook.runs)} run(s), "
        f"stream/batch byte-identical: {'yes' if identical else 'NO'}"
    )
    last = hook.runs[-1].monitor
    if last.progress is not None:
        print(f"[live] {figure}: final {last.progress_line()}")
    kinds = hook.alert_kinds()
    if kinds:
        counts = {}
        for record in hook.runs:
            for alert in record.monitor.alerts:
                counts[alert.kind] = counts.get(alert.kind, 0) + 1
        rendered = ", ".join(f"{k}x{counts[k]}" for k in kinds)
        print(f"[live] {figure}: alerts: {rendered}")
    else:
        print(f"[live] {figure}: alerts: none")
    longest = max(hook.runs, key=lambda r: len(r.streamed))
    path = f"LIVE_{figure}.ndjson"
    with open(path, "w") as fh:
        fh.write(longest.streamed)
    print(f"[live] wrote {path}")
    return identical


def _report_profile(figure: str, collector) -> None:
    """Aggregate one figure's profiles: attribution table + flamegraph.

    The attribution table sums the exclusive categories over every run the
    figure performed; the speedscope artifact captures the single longest
    run (the one whose critical path dominates the figure's wall time).
    """
    from ..prof import CATEGORIES, attribution, save_speedscope

    profiles = [p for _, p in collector.profiles if p.has_spans]
    if not profiles:
        print(f"[profile] {figure}: no profiled runs")
        return
    totals = {category: 0.0 for category in CATEGORIES}
    for prof in profiles:
        for category, seconds in attribution(prof).items():
            totals[category] += seconds
    makespan = sum(p.makespan for p in profiles)
    print(
        f"[profile] {figure}: {len(profiles)} run(s), "
        f"{makespan:.3f} simulated seconds total"
    )
    for category, seconds in totals.items():
        if seconds > 0.0:
            share = 100.0 * seconds / makespan if makespan else 0.0
            print(f"[profile]   {category:<9} {seconds:12.6f} s  ({share:5.1f}%)")
    longest = max(profiles, key=lambda p: p.makespan)
    path = f"PROFILE_{figure}.speedscope.json"
    save_speedscope(longest, path, name=f"{figure} (longest run)")
    print(f"[profile] wrote {path}")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
