"""Command-line entry: ``python -m repro.bench [figure ...]``.

Regenerates the requested tables/figures (all of them by default),
printing the paper-style rows and the shape-check verdicts.
"""

from __future__ import annotations

import sys

from .figures import ALL_FIGURES


def main(argv) -> int:
    names = argv or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}")
        print(f"available: {', '.join(ALL_FIGURES)}")
        return 2
    failed = []
    for name in names:
        result = ALL_FIGURES[name]()
        print(result.render())
        if not result.all_checks_pass:
            failed.append(name)
    if failed:
        print(f"shape-check failures: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
