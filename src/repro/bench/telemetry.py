"""The ``--telemetry`` report: exporters exercised on a paper workload.

Runs the synthetic nested-explore MDF (§6.1 job 4) on a memory-starved
cluster under LRU and AMM with telemetry enabled, then prints every export
the observability layer offers: the Fig 17-style memory-over-time series
for both policies, the per-branch and per-node attribution tables, the
trace↔registry consistency check, and the Prometheus text / JSON
expositions of the AMM run.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..cluster import GB, Cluster
from ..engine import EngineConfig, run_mdf
from ..obs import diff_registries, registry_from_trace
from ..workloads import string_int_pairs, synthetic_mdf
from .report import render_table


def telemetry_report(
    pairs_n: int = 600,
    workers: int = 4,
    mem_per_worker_gb: float = 2.0,
    per_worker_data_gb: float = 3.0,
    sample_interval: float = 0.25,
) -> str:
    """Render the full telemetry demonstration report as text."""
    pairs = string_int_pairs(pairs_n)
    nominal = int(workers * per_worker_data_gb * GB)
    mdf = synthetic_mdf(pairs, b1=4, b2=4, nominal_bytes=nominal)

    results: Dict[str, Any] = {}
    for policy in ("lru", "amm"):
        cluster = Cluster(workers, int(mem_per_worker_gb * GB))
        config = EngineConfig(partitions_per_worker=2)
        results[policy] = run_mdf(
            mdf,
            cluster,
            scheduler="bas",
            memory=policy,
            config=config,
            telemetry=sample_interval,
        )

    sections: List[str] = []
    sections.append(
        render_table(
            "telemetry demo: synthetic 4x4 MDF, "
            f"{workers} workers x {mem_per_worker_gb:g} GB (data {nominal / GB:g} GB)",
            ["policy", "completion (s)", "hit ratio", "evictions", "samples"],
            [
                [
                    policy,
                    result.completion_time,
                    result.memory_hit_ratio,
                    result.metrics.evictions,
                    len(result.telemetry.samples),
                ]
                for policy, result in results.items()
            ],
            note="Fig 17 setup: same job under LRU vs AMM on a starved cluster",
        )
    )

    for policy, result in results.items():
        sections.append(f"--- timeline under {policy.upper()} ---")
        sections.append(result.telemetry.timeline_table(max_rows=16))

    amm = results["amm"]
    sections.append("--- attribution (AMM run) ---")
    sections.append(amm.telemetry.branch_breakdown())
    sections.append(amm.telemetry.node_breakdown())

    sections.append("--- trace <-> registry consistency (AMM run) ---")
    problems = diff_registries(amm.telemetry.registry, registry_from_trace(amm.events))
    if problems:
        sections.append("\n".join(f"MISMATCH {p}" for p in problems))
    else:
        sections.append(
            "registry rebuilt from the decision trace matches the live "
            "registry on every guaranteed view (0 mismatches)"
        )
    sections.append("")

    sections.append("--- Prometheus exposition (AMM run) ---")
    sections.append(amm.telemetry.to_prometheus())
    sections.append("--- JSON exposition (AMM run) ---")
    sections.append(amm.telemetry.to_json())
    return "\n".join(sections)


__all__ = ["telemetry_report"]
