"""Critical-path extraction over the span timeline.

The master executes one stage at a time (the paper's engine parallelises
*within* a stage, across workers), so the span DAG's critical path is the
span chain itself — but each span's wall decomposes further: its io wall
is gated by exactly one slowest node, its compute wall by another, and
network/overhead are cluster/master-level.  The critical path is therefore
the sequence of *gating segments*: for every span, the components that
made it as long as it was, each pinned to the node that set the pace.

By construction the segment lengths sum to the span durations, which sum
to the makespan — so the reported critical-path length equals the job's
completion time to 1e-9 (tested), and shaving any segment shortens the
job by exactly that amount (what the ``--what-if`` re-coster exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .attribution import span_attribution
from .spans import Span, SpanProfile


@dataclass
class Segment:
    """One critical-path slice: a category of one span, with its pacer."""

    started: float
    seconds: float
    category: str
    span_label: str
    node: Optional[str]  # gating node (io/compute), None for master-level

    @property
    def description(self) -> str:
        where = f" @ {self.node}" if self.node else ""
        return f"{self.span_label}: {self.category}{where}"


#: stable intra-span ordering of segments (arbitrary but deterministic)
_SEGMENT_ORDER = (
    "io",
    "reload",
    "compute",
    "network",
    "overhead",
    "evaluator",
    "recovery",
)


def _span_segments(span: Span) -> List[Segment]:
    cats = span_attribution(span)
    segments: List[Segment] = []
    at = span.started
    for category in _SEGMENT_ORDER:
        seconds = cats.get(category, 0.0)
        if seconds <= 0.0:
            continue
        if category in ("io", "reload"):
            node = span.gating_io_node()
        elif category == "compute":
            node = span.gating_compute_node()
        elif category in ("evaluator", "recovery"):
            # whole-span categories: pin to the overall slowest node
            node = span.gating_io_node() or span.gating_compute_node()
        else:
            node = None
        segments.append(
            Segment(
                started=at,
                seconds=seconds,
                category=category,
                span_label=span.label,
                node=node,
            )
        )
        at += seconds
    return segments


def critical_path(profile: SpanProfile) -> List[Segment]:
    """Every gating segment in execution order; lengths sum to makespan."""
    out: List[Segment] = []
    for span in profile.spans:
        out.extend(_span_segments(span))
    return out


def critical_path_length(profile: SpanProfile) -> float:
    return sum(segment.seconds for segment in critical_path(profile))


def top_segments(path: List[Segment], n: int = 3) -> List[Segment]:
    """The ``n`` longest segments (ties broken by position: earliest wins)."""
    return sorted(path, key=lambda s: (-s.seconds, s.started))[:n]


__all__ = ["Segment", "critical_path", "critical_path_length", "top_segments"]
