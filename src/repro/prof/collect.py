"""Profile collection hook for harness runs (``repro.bench --profile``).

Mirrors the auto-validate hook in :mod:`repro.trace.validate`: the bench
harness installs a :class:`ProfileCollector`, ``run_mdf`` offers every
finished :class:`~repro.engine.runner.JobResult` to it, and the harness
reads back the reconstructed profiles keyed by the label it set before
each run.  Module-level state, same caveats as the validate hook — the
harness is single-threaded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .spans import SpanProfile, profile_from_result


class ProfileCollector:
    """Accumulates ``(label, SpanProfile)`` pairs across harness runs."""

    def __init__(self) -> None:
        self.label: str = ""
        self.profiles: List[Tuple[str, SpanProfile]] = []

    def record(self, result) -> None:
        self.profiles.append((self.label, profile_from_result(result)))

    def by_label(self) -> Dict[str, List[SpanProfile]]:
        out: Dict[str, List[SpanProfile]] = {}
        for label, profile in self.profiles:
            out.setdefault(label, []).append(profile)
        return out


_collector: Optional[ProfileCollector] = None


def set_profile_collector(collector: Optional[ProfileCollector]) -> None:
    """Install (or with ``None`` remove) the active collector."""
    global _collector
    _collector = collector


def active_profile_collector() -> Optional[ProfileCollector]:
    return _collector


__all__ = ["ProfileCollector", "active_profile_collector", "set_profile_collector"]
