"""``--what-if`` re-costing: reprice a recorded run under scaled costs.

Because the critical path tiles the makespan exactly (see
:mod:`repro.prof.critical`), scaling a category's segments by a factor
yields the *exact* completion time the simulator would produce if that
resource were that much faster or slower — no re-execution needed.  The
``alpha`` pseudo-category scales all storage traffic (io + reload),
matching the paper's §6 sensitivity axis (storage bandwidth alpha).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .attribution import attribution, span_attribution
from .spans import CATEGORIES, SpanProfile

#: factor spec keys: every exclusive category, plus the alpha alias
VALID_KEYS = CATEGORIES + ("alpha",)


def parse_factors(spec: str) -> Dict[str, float]:
    """Parse ``"compute=0.5x,alpha=2x"`` into ``{category: factor}``."""
    factors: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad what-if factor {part!r} (want key=FACTORx)")
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in VALID_KEYS:
            raise ValueError(
                f"unknown what-if key {key!r} (choose from {', '.join(VALID_KEYS)})"
            )
        raw = raw.strip()
        if raw.endswith(("x", "X")):
            raw = raw[:-1]
        factor = float(raw)
        if factor < 0:
            raise ValueError(f"what-if factor for {key!r} must be >= 0")
        factors[key] = factor
    if not factors:
        raise ValueError("empty what-if spec")
    return factors


def _effective(factors: Dict[str, float]) -> Dict[str, float]:
    """Expand the alpha alias onto io and reload (explicit keys win)."""
    out = {category: 1.0 for category in CATEGORIES}
    alpha = factors.get("alpha")
    if alpha is not None:
        out["io"] = alpha
        out["reload"] = alpha
    for key, factor in factors.items():
        if key != "alpha":
            out[key] = factor
    return out


@dataclass
class WhatIf:
    """A repriced run: original vs projected completion, per category."""

    factors: Dict[str, float]
    original: Dict[str, float]
    projected: Dict[str, float]
    original_makespan: float
    projected_makespan: float

    @property
    def speedup(self) -> float:
        if not self.projected_makespan:
            return float("inf") if self.original_makespan else 1.0
        return self.original_makespan / self.projected_makespan


def reprice(profile: SpanProfile, factors: Dict[str, float]) -> WhatIf:
    """Project the makespan under the given per-category cost factors."""
    scale = _effective(factors)
    original = attribution(profile)
    projected = {category: 0.0 for category in CATEGORIES}
    for span in profile.spans:
        for category, seconds in span_attribution(span).items():
            projected[category] += seconds * scale[category]
    return WhatIf(
        factors=dict(factors),
        original=original,
        projected=projected,
        original_makespan=sum(original.values()),
        projected_makespan=sum(projected.values()),
    )


def render_whatif(result: WhatIf) -> str:
    spec = ",".join(f"{k}={v:g}x" for k, v in sorted(result.factors.items()))
    lines = [f"what-if [{spec}]"]
    for category in CATEGORIES:
        before = result.original[category]
        after = result.projected[category]
        if before == 0.0 and after == 0.0:
            continue
        lines.append(f"  {category:<9} {before:14.6f} -> {after:14.6f}")
    lines.append(
        f"  {'makespan':<9} {result.original_makespan:14.6f} -> "
        f"{result.projected_makespan:14.6f}  ({result.speedup:.2f}x speedup)"
    )
    return "\n".join(lines)


__all__ = ["VALID_KEYS", "WhatIf", "parse_factors", "render_whatif", "reprice"]
