"""CI perf-regression gate over simulated completion times.

The engine is a deterministic simulator, so the completion time of a
fixed scenario is a *stable number*, not a noisy wallclock sample — a
committed baseline plus an exact comparison replaces the usual
statistical benchmarking machinery.  Any engine change that slows a
scenario's simulated makespan by more than the tolerance (default 5%)
fails the gate; intended cost-model changes re-baseline with
``python -m repro.prof --gate benchmarks/baselines.json --update``.

This module imports the engine, so it is deliberately NOT imported from
``repro.prof.__init__`` (the master imports ``repro.prof.spans``, and a
package-level import here would close the cycle).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..cluster.cluster import Cluster
from ..cluster.costmodel import GB, MB
from ..core.builder import MDFBuilder
from ..core.evaluators import CallableEvaluator
from ..core.selection import Min
from ..engine.runner import run_mdf

#: relative slowdown beyond which the gate fails
DEFAULT_TOLERANCE = 0.05


def _threshold_explore(name: str, thresholds, nominal_bytes: int):
    builder = MDFBuilder(name)
    src = builder.read_data(
        list(range(1000)), name="src", nominal_bytes=nominal_bytes
    )
    evaluator = CallableEvaluator(len, name="count", monotone=True)
    src.explore(
        {"threshold": list(thresholds)},
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
        name="explore-threshold",
    ).choose(evaluator, Min(), name="keep-smallest").write(name="out")
    return builder.build()


def _scenario_quickstart(backend: str = "serial") -> float:
    """The quickstart recipe: roomy cluster, three thresholds."""
    mdf = _threshold_explore("gate-quickstart", [10, 100, 500], 256 * MB)
    cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
    return run_mdf(
        mdf, cluster, scheduler="bas", memory="amm", backend=backend
    ).completion_time


def _scenario_quickstart_mp() -> float:
    """Quickstart on the ``mp`` backend.

    Backends are forbidden from moving simulated time at all, so this
    scenario shares the exact baseline value with ``quickstart`` — any
    drift between the two is a backend-identity regression, caught here
    even if both baselines were regenerated together.
    """
    return _scenario_quickstart(backend="mp")


def _scenario_starved_explore() -> float:
    """The golden explore/choose recipe: starved cluster, spills + pruning."""
    mdf = _threshold_explore(
        "gate-starved", [50, 150, 400, 700, 900], 96 * MB
    )
    cluster = Cluster(num_workers=2, mem_per_worker=48 * MB)
    return run_mdf(
        mdf, cluster, scheduler="bas", memory="amm", backend="serial"
    ).completion_time


def _scenario_chain() -> float:
    """A linear multi-stage pipeline: exercises the non-explore stage path."""
    builder = MDFBuilder("gate-chain")
    pipe = builder.read_data(
        list(range(2000)), name="src", nominal_bytes=512 * MB
    )
    for i in range(4):
        pipe = pipe.transform(
            lambda xs, k=i: [x + k for x in xs], name=f"step-{i}"
        )
    pipe.write(name="out")
    cluster = Cluster(num_workers=2, mem_per_worker=256 * MB)
    return run_mdf(
        builder.build(), cluster, scheduler="bas", memory="amm", backend="serial"
    ).completion_time


def _scenario_lab(workload: str, scheduler: str) -> Callable[[], float]:
    """One policy-lab cell as a gate scenario (same recipe as the lab's
    golden traces, so a drift fails both gates consistently)."""

    def scenario() -> float:
        from ..lab.workloads import get_workload

        result, _ = get_workload(workload).run(
            scheduler=scheduler, memory="amm", backend="serial"
        )
        return result.completion_time

    scenario.__name__ = f"_scenario_lab_{scheduler}"
    return scenario


#: the gated scenario set: small, fast, and covering the three engine
#: regimes (roomy explore, starved explore with evictions, plain chain),
#: plus one pinned policy-lab cell per contender scheduler and one
#: mp-backend parity scenario.  Every scenario pins its backend
#: explicitly, so a change to the default backend (or a backend that
#: perturbs simulated time) can never slip through the gate silently.
SCENARIOS: Dict[str, Callable[[], float]] = {
    "quickstart": _scenario_quickstart,
    "quickstart_mp": _scenario_quickstart_mp,
    "starved_explore": _scenario_starved_explore,
    "chain": _scenario_chain,
    "lab_heft": _scenario_lab("wide_topk", "heft"),
    "lab_speculative": _scenario_lab("nested_topk", "speculative"),
    "lab_wsteal": _scenario_lab("starved_explore", "wsteal"),
    "lab_random": _scenario_lab("filter_min", "random"),
}


@dataclass
class GateRow:
    scenario: str
    baseline: float
    measured: float

    @property
    def delta(self) -> float:
        """Relative slowdown vs baseline (positive = slower)."""
        if self.baseline == 0.0:
            return 0.0 if self.measured == 0.0 else float("inf")
        return (self.measured - self.baseline) / self.baseline


@dataclass
class GateReport:
    rows: List[GateRow]
    tolerance: float
    updated: bool = False

    @property
    def failures(self) -> List[GateRow]:
        return [row for row in self.rows if row.delta > self.tolerance]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = []
        for row in self.rows:
            status = "FAIL" if row.delta > self.tolerance else "ok"
            lines.append(
                f"  {row.scenario:<16} baseline {row.baseline:12.6f}  "
                f"measured {row.measured:12.6f}  ({row.delta:+7.2%})  {status}"
            )
        verdict = (
            "gate PASSED"
            if self.ok
            else f"gate FAILED: {len(self.failures)} scenario(s) regressed "
            f"beyond {self.tolerance:.0%}"
        )
        return "\n".join(lines + [verdict])


def measure(slowdown: float = 1.0) -> Dict[str, float]:
    """Run every gate scenario; ``slowdown`` scales the measured times.

    The multiplier exists so CI (and the test suite) can prove the gate
    actually fails on a regression: ``--inject-slowdown 1.1`` simulates a
    uniform 10% engine slowdown without touching the engine.
    """
    return {name: fn() * slowdown for name, fn in SCENARIOS.items()}


def run_gate(
    baseline_path,
    tolerance: float = DEFAULT_TOLERANCE,
    update: bool = False,
    slowdown: float = 1.0,
) -> GateReport:
    """Compare measured completion times against the committed baseline."""
    measured = measure(slowdown=slowdown)
    if update:
        payload = {
            "_comment": (
                "Simulated completion times (seconds) of the repro.prof gate "
                "scenarios. Regenerate with: python -m repro.prof --gate "
                "benchmarks/baselines.json --update"
            ),
            "tolerance": tolerance,
            "scenarios": {k: measured[k] for k in sorted(measured)},
        }
        with open(baseline_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        rows = [GateRow(name, measured[name], measured[name]) for name in sorted(measured)]
        return GateReport(rows=rows, tolerance=tolerance, updated=True)
    with open(baseline_path) as fh:
        payload = json.load(fh)
    baselines = payload.get("scenarios", {})
    rows = []
    for name in sorted(SCENARIOS):
        if name not in baselines:
            raise KeyError(
                f"scenario {name!r} missing from {baseline_path}; "
                f"re-run with --update"
            )
        rows.append(GateRow(name, baselines[name], measured[name]))
    return GateReport(rows=rows, tolerance=tolerance)


__all__ = [
    "DEFAULT_TOLERANCE",
    "GateReport",
    "GateRow",
    "SCENARIOS",
    "measure",
    "run_gate",
]
