"""``python -m repro.prof`` — profile a recorded trace, or run the CI gate.

Trace mode::

    python -m repro.prof tests/golden/quickstart.trace.jsonl
    python -m repro.prof trace.jsonl --critical-path --by-branch
    python -m repro.prof trace.jsonl --what-if compute=0.5x,alpha=2x
    python -m repro.prof trace.jsonl --speedscope out.speedscope.json

Gate mode (CI perf-regression check over simulated completion times)::

    python -m repro.prof --gate benchmarks/baselines.json
    python -m repro.prof --gate benchmarks/baselines.json --update
"""

from __future__ import annotations

import argparse
import sys

from ..trace.events import Trace
from . import (
    build_profile,
    critical_path,
    parse_factors,
    render_attribution,
    render_branches,
    render_critical_path,
    render_per_node,
    render_whatif,
    reprice,
    save_chrome_spans,
    save_speedscope,
)


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.prof",
        description="critical-path profiler over canonical decision traces",
    )
    parser.add_argument("trace", nargs="?", help="trace JSONL file to profile")
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="print the critical path (gating segments, longest first)",
    )
    parser.add_argument(
        "--by-branch",
        action="store_true",
        help="print the per-branch cost-of-exploration breakdown",
    )
    parser.add_argument(
        "--per-node",
        action="store_true",
        help="print the per-node busy/idle attribution table",
    )
    parser.add_argument(
        "--what-if",
        metavar="SPEC",
        help="re-cost under scaled categories, e.g. compute=0.5x,alpha=2x",
    )
    parser.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write a speedscope flamegraph JSON of the span timeline",
    )
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        help="write a Chrome trace_event JSON of the span timeline",
    )
    parser.add_argument(
        "--gate",
        metavar="BASELINES",
        help="run the perf-regression gate against this baselines JSON",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="with --gate: rewrite the baselines from the current engine",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="with --gate: relative slowdown that fails (default 0.05)",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="with --gate: scale measured times (proves the gate can fail)",
    )
    return parser


def run_gate_mode(args) -> int:
    from .gate import DEFAULT_TOLERANCE, run_gate  # engine import: keep lazy

    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    report = run_gate(
        args.gate,
        tolerance=tolerance,
        update=args.update,
        slowdown=args.inject_slowdown,
    )
    if report.updated:
        print(f"baselines written to {args.gate}")
        return 0
    print(report.render())
    return 0 if report.ok else 1


def run_trace_mode(args) -> int:
    trace = Trace.load_jsonl(args.trace)
    profile = build_profile(trace)
    print(render_attribution(profile))
    if args.per_node:
        print()
        print(render_per_node(profile))
    if args.by_branch:
        print()
        print(render_branches(profile))
    if args.critical_path:
        print()
        print(render_critical_path(critical_path(profile), profile.makespan))
    if args.what_if:
        print()
        print(render_whatif(reprice(profile, parse_factors(args.what_if))))
    if args.speedscope:
        save_speedscope(profile, args.speedscope, name=args.trace)
        print(f"speedscope profile written to {args.speedscope}")
    if args.chrome:
        save_chrome_spans(profile, args.chrome)
        print(f"chrome trace written to {args.chrome}")
    return 0


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.gate:
        return run_gate_mode(args)
    if not args.trace:
        parser.error("a trace path (or --gate BASELINES) is required")
    return run_trace_mode(args)


if __name__ == "__main__":
    sys.exit(main())
