"""repro.prof — critical-path profiler over the canonical decision trace.

Reconstructs a per-node span timeline from a recorded trace
(:mod:`~repro.prof.spans`), attributes every simulated second of the
makespan to exclusive categories with an exact conservation invariant
(:mod:`~repro.prof.attribution`), extracts the critical path and its
gating nodes (:mod:`~repro.prof.critical`), re-costs recorded runs under
scaled resource speeds (:mod:`~repro.prof.whatif`), and exports
speedscope / Chrome-trace / plain-text views (:mod:`~repro.prof.export`).

CLI::

    python -m repro.prof trace.jsonl --critical-path --by-branch
    python -m repro.prof trace.jsonl --what-if compute=0.5x,alpha=2x
    python -m repro.prof --gate benchmarks/baselines.json

The CI perf-regression gate lives in :mod:`repro.prof.gate`; it imports
the engine, so it is intentionally not re-exported here (the engine
imports :mod:`repro.prof.spans` for the shared category mapping, and a
package-level gate import would create a cycle).
"""

from .attribution import (
    BranchCost,
    CONSERVATION_TOL,
    ExplorationCost,
    attribution,
    branch_attribution,
    exploration_cost,
    per_node_attribution,
    span_attribution,
)
from .collect import ProfileCollector, active_profile_collector, set_profile_collector
from .critical import Segment, critical_path, critical_path_length, top_segments
from .export import (
    render_attribution,
    render_branches,
    render_critical_path,
    render_per_node,
    save_chrome_spans,
    save_speedscope,
    to_chrome_spans,
    to_speedscope,
)
from .spans import (
    CATEGORIES,
    Span,
    SpanProfile,
    build_profile,
    profile_from_result,
    registry_categories,
)
from .whatif import WhatIf, parse_factors, render_whatif, reprice

__all__ = [
    "BranchCost",
    "CATEGORIES",
    "CONSERVATION_TOL",
    "ExplorationCost",
    "ProfileCollector",
    "Segment",
    "Span",
    "SpanProfile",
    "WhatIf",
    "active_profile_collector",
    "attribution",
    "branch_attribution",
    "build_profile",
    "critical_path",
    "critical_path_length",
    "exploration_cost",
    "parse_factors",
    "per_node_attribution",
    "profile_from_result",
    "registry_categories",
    "render_attribution",
    "render_branches",
    "render_critical_path",
    "render_per_node",
    "render_whatif",
    "reprice",
    "save_chrome_spans",
    "save_speedscope",
    "set_profile_collector",
    "span_attribution",
    "to_chrome_spans",
    "to_speedscope",
    "top_segments",
]
