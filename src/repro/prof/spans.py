"""Span reconstruction: turn a decision trace back into a timeline.

The engine advances its simulated clock in exactly one place
(``Master._advance``), and every advance is recorded on the trace — stage
executions as ``stage_completed`` events carrying their wall-time component
breakdown, everything else (choose evaluation + selection, deferred-tail
stores, checkpoint writes, §5 checkpoint reloads) as ``span`` events with
an activity tag.  This module replays those events into a list of
:class:`Span` objects that *tile* the interval ``[start, completion_time]``
with no gaps and no overlaps — the property ``check_profile_conserved``
(:mod:`repro.trace.validate`) enforces — so every simulated second of the
makespan is attributable to exactly one span.

Traces recorded before the profile fields existed reconstruct to an empty
profile (``has_spans`` is False) and every downstream consumer passes
vacuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..trace.events import Trace

#: exclusive time categories every simulated second lands in (the per-node
#: tables add "idle" for the remainder up to the makespan)
CATEGORIES = (
    "compute",
    "io",
    "reload",
    "network",
    "overhead",
    "evaluator",
    "recovery",
)


def registry_categories(
    io: float,
    compute: float,
    network: float,
    overhead: float,
    activity: Optional[str] = None,
    recovery: bool = False,
) -> Dict[str, float]:
    """Map one span's components to the coarse registry categories.

    This is the single source of truth shared by the live counters
    (``Master._advance``), the trace→metrics bridge and the profiler:
    recovery time (a re-executed stage or a checkpoint reload) is charged
    whole to ``recovery``, choose evaluation + selection whole to
    ``evaluator``, and everything else splits by component.  The finer
    io/reload split (which needs per-access reload annotations) happens
    only in :mod:`repro.prof.attribution`.
    """
    total = io + compute + network + overhead
    if recovery or activity == "recovery_reload":
        return {"recovery": total} if total else {}
    if activity == "choose_evaluation":
        return {"evaluator": total} if total else {}
    out: Dict[str, float] = {}
    if compute:
        out["compute"] = compute
    if io:
        out["io"] = io
    if network:
        out["network"] = network
    if overhead:
        out["overhead"] = overhead
    return out


@dataclass
class Span:
    """One clock advance: a half-open slice ``[started, finished)``."""

    seq: int
    kind: str  # "stage" | "activity"
    name: str  # stage id, or the activity tag
    branch: Optional[str]
    started: float
    finished: float
    io: float
    compute: float
    network: float
    overhead: float
    per_node_io: Dict[str, float] = field(default_factory=dict)
    per_node_compute: Dict[str, float] = field(default_factory=dict)
    #: per-node seconds of this span's io that streamed eviction-spilled
    #: partitions back from disk (from ``dataset_access`` reload flags)
    reload_io: Dict[str, float] = field(default_factory=dict)
    #: the span is recovery work (§5): a re-executed stage or a reload
    recovery: bool = False
    ops: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finished - self.started

    @property
    def label(self) -> str:
        if self.kind == "stage":
            suffix = f" [{self.branch}]" if self.branch else ""
            return f"{self.name}{suffix}"
        return self.name

    def gating_io_node(self) -> Optional[str]:
        """The node whose io wall gates this span (ties: lowest id)."""
        if not self.per_node_io:
            return None
        return sorted(self.per_node_io.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]

    def gating_compute_node(self) -> Optional[str]:
        if not self.per_node_compute:
            return None
        return sorted(
            self.per_node_compute.items(), key=lambda kv: (-kv[1], kv[0])
        )[0][0]


@dataclass
class SpanProfile:
    """The reconstructed span timeline of one job execution."""

    spans: List[Span]
    #: branch id -> "kept" | "discarded" | "pruned" (from choose_finalized)
    branch_fates: Dict[str, str]
    nodes: List[str]

    @property
    def has_spans(self) -> bool:
        return bool(self.spans)

    @property
    def start(self) -> float:
        return self.spans[0].started if self.spans else 0.0

    @property
    def completion_time(self) -> float:
        return self.spans[-1].finished if self.spans else 0.0

    @property
    def makespan(self) -> float:
        return self.completion_time - self.start


def _profile_fields(data: Dict) -> bool:
    return "io" in data and "per_node_io" in data


def build_profile(trace: Trace) -> SpanProfile:
    """Reconstruct the span timeline from a trace (live or from JSONL)."""
    spans: List[Span] = []
    fates: Dict[str, str] = {}
    nodes: set = set()
    #: node -> reload seconds accumulated since the last span boundary;
    #: dataset_access events are emitted while the clock still sits at the
    #: covering span's start, so they belong to the *next* span closed
    pending_reload: Dict[str, float] = {}
    #: stage id -> outstanding stage_reexecuted announcements; inputs are
    #: secured before the announcement, so re-executions of the same stage
    #: pair with completions in LIFO-safe counting order
    reexec_pending: Dict[str, int] = {}
    for event in trace:
        data = event.data
        kind = event.kind
        if kind == "dataset_access":
            if data.get("reload"):
                node = data["node"]
                pending_reload[node] = pending_reload.get(node, 0.0) + data.get(
                    "seconds", 0.0
                )
        elif kind == "stage_reexecuted":
            reexec_pending[data["stage"]] = reexec_pending.get(data["stage"], 0) + 1
        elif kind == "stage_completed" and _profile_fields(data):
            stage_id = data["stage"]
            recovery = reexec_pending.get(stage_id, 0) > 0
            if recovery:
                reexec_pending[stage_id] -= 1
            spans.append(
                Span(
                    seq=event.seq,
                    kind="stage",
                    name=stage_id,
                    branch=data.get("branch"),
                    started=data["started"],
                    finished=data["finished"],
                    io=data["io"],
                    compute=data["compute"],
                    network=data["network"],
                    overhead=data["overhead"],
                    per_node_io=dict(data["per_node_io"]),
                    per_node_compute=dict(data["per_node_compute"]),
                    reload_io=pending_reload,
                    recovery=recovery,
                    ops=list(data.get("ops", [])),
                )
            )
            pending_reload = {}
        elif kind == "span":
            spans.append(
                Span(
                    seq=event.seq,
                    kind="activity",
                    name=data["activity"],
                    branch=data.get("branch"),
                    started=data["started"],
                    finished=data["finished"],
                    io=data["io"],
                    compute=data["compute"],
                    network=data["network"],
                    overhead=data["overhead"],
                    per_node_io=dict(data["per_node_io"]),
                    per_node_compute=dict(data["per_node_compute"]),
                    reload_io=pending_reload,
                    recovery=data["activity"] == "recovery_reload",
                )
            )
            pending_reload = {}
        elif kind == "choose_finalized":
            for branch_id in data["kept"]:
                fates[branch_id] = "kept"
            for branch_id in data["discarded"]:
                fates.setdefault(branch_id, "discarded")
            for branch_id in data["pruned"]:
                fates.setdefault(branch_id, "pruned")
    for span in spans:
        nodes.update(span.per_node_io)
        nodes.update(span.per_node_compute)
    return SpanProfile(spans=spans, branch_fates=fates, nodes=sorted(nodes))


def profile_from_result(result) -> SpanProfile:
    """Convenience: build the profile straight off a ``JobResult``."""
    return build_profile(result.events)


__all__ = [
    "CATEGORIES",
    "Span",
    "SpanProfile",
    "build_profile",
    "profile_from_result",
    "registry_categories",
]
