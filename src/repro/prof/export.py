"""Profile exporters: speedscope flamegraph, Chrome spans, text tables.

The speedscope export is an *evented* profile (open at
https://www.speedscope.app or in the VS Code extension): each span opens a
frame named after its stage/activity, and inside it the attribution
categories open nested frames — frame widths are simulated seconds, so
the flamegraph literally is the makespan attribution.  The Chrome export
renders the same spans as complete events (one row per branch) with the
category split in ``args``.  The text renderers produce the plain
attribution/critical-path/branch tables the CLI and ``--profile`` print.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .attribution import (
    attribution,
    branch_attribution,
    exploration_cost,
    per_node_attribution,
    span_attribution,
)
from .critical import Segment, top_segments
from .spans import CATEGORIES, SpanProfile

# --------------------------------------------------------------- speedscope


def to_speedscope(profile: SpanProfile, name: str = "repro.prof") -> Dict[str, Any]:
    """The speedscope JSON file object for one profile."""
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    events: List[Dict[str, Any]] = []
    for span in profile.spans:
        outer = frame(span.label)
        events.append({"type": "O", "frame": outer, "at": span.started})
        at = span.started
        for category in CATEGORIES:
            seconds = span_attribution(span).get(category, 0.0)
            if seconds <= 0.0:
                continue
            inner = frame(category)
            events.append({"type": "O", "frame": inner, "at": at})
            at += seconds
            events.append({"type": "C", "frame": inner, "at": at})
        events.append({"type": "C", "frame": outer, "at": span.finished})
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": profile.start,
                "endValue": profile.completion_time,
                "events": events,
            }
        ],
        "exporter": "repro.prof",
    }


def save_speedscope(profile: SpanProfile, path, name: str = "repro.prof") -> None:
    with open(path, "w") as fh:
        json.dump(to_speedscope(profile, name=name), fh)


# ------------------------------------------------------------------- chrome


def to_chrome_spans(profile: SpanProfile) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON: spans as complete events per branch."""
    tids: Dict[str, int] = {}

    def tid_of(branch: Optional[str]) -> int:
        key = branch or "main"
        if key not in tids:
            tids[key] = len(tids) + 1
        return tids[key]

    out: List[Dict[str, Any]] = []
    for span in profile.spans:
        out.append(
            {
                "name": span.label,
                "cat": span.kind,
                "ph": "X",
                "ts": span.started * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "pid": 0,
                "tid": tid_of(span.branch),
                "args": {k: v for k, v in span_attribution(span).items()},
            }
        )
    meta = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": name}}
        for name, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def save_chrome_spans(profile: SpanProfile, path) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_spans(profile), fh)


# --------------------------------------------------------------------- text


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _secs(value: float) -> str:
    return f"{value:.6f}"


def _pct(value: float, whole: float) -> str:
    return f"{100.0 * value / whole:5.1f}%" if whole else "  0.0%"


def render_attribution(profile: SpanProfile) -> str:
    """The makespan attribution table (conserved category totals)."""
    if not profile.has_spans:
        return "no profile spans recorded (trace predates repro.prof)"
    totals = attribution(profile)
    makespan = profile.makespan
    rows = [
        [category, _secs(seconds), _pct(seconds, makespan)]
        for category, seconds in totals.items()
        if seconds > 0.0
    ]
    rows.append(["total", _secs(sum(totals.values())), _pct(makespan, makespan)])
    header = f"makespan attribution ({_secs(makespan)} simulated seconds)"
    return header + "\n" + _table(["category", "seconds", "share"], rows)


def render_per_node(profile: SpanProfile) -> str:
    """Per-node busy/idle table (each row sums to the makespan)."""
    if not profile.has_spans:
        return ""
    per_node = per_node_attribution(profile)
    columns = [c for c in CATEGORIES if any(v[c] > 0 for v in per_node.values())]
    rows = []
    for node in sorted(per_node):
        slots = per_node[node]
        rows.append(
            [node]
            + [_secs(slots[c]) for c in columns]
            + [_secs(slots["idle"]), _pct(slots["idle"], profile.makespan)]
        )
    return _table(["node"] + columns + ["idle", "idle%"], rows)


def render_branches(profile: SpanProfile) -> str:
    """Per-branch cost-of-exploration table."""
    if not profile.has_spans:
        return ""
    costs = branch_attribution(profile)
    makespan = profile.makespan
    rows = [
        [cost.branch, cost.fate, _secs(cost.seconds), _pct(cost.seconds, makespan)]
        for cost in costs
    ]
    explo = exploration_cost(profile)
    out = _table(["branch", "fate", "seconds", "share"], rows)
    out += (
        f"\nexploration cost: {_secs(explo.sunk_seconds)} s sunk into "
        f"discarded branches ({100.0 * explo.sunk_share:.1f}% of the makespan); "
        f"{explo.pruned_branches} branch(es) pruned before costing anything"
    )
    return out


def render_critical_path(
    segments: List[Segment], makespan: float, limit: int = 10
) -> str:
    """The longest critical-path segments, plus the exact total."""
    if not segments:
        return "no profile spans recorded (trace predates repro.prof)"
    total = sum(s.seconds for s in segments)
    rows = [
        [
            _secs(segment.started),
            _secs(segment.seconds),
            _pct(segment.seconds, makespan),
            segment.description,
        ]
        for segment in top_segments(segments, limit)
    ]
    out = _table(["t", "seconds", "share", "segment"], rows)
    out += (
        f"\ncritical-path length: {_secs(total)} s over {len(segments)} "
        f"segments (== completion time)"
    )
    return out


__all__ = [
    "render_attribution",
    "render_branches",
    "render_critical_path",
    "render_per_node",
    "save_chrome_spans",
    "save_speedscope",
    "to_chrome_spans",
    "to_speedscope",
]
