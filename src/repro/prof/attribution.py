"""Exclusive time attribution over a reconstructed span timeline.

Every simulated second of the makespan lands in exactly one category
(:data:`~repro.prof.spans.CATEGORIES`): operator compute, disk/memory io,
eviction-induced reload, network, scheduling overhead, choose evaluation
and §5 recovery.  The split is *conserving* — the category totals sum to
the makespan to 1e-9, which :func:`attribution` asserts and the trace
validator ``check_profile_conserved`` independently enforces span by span.

The io/reload refinement uses the span's gating node (the node whose io
wall the span's io component *is*): the reload seconds that node spent
streaming eviction-spilled partitions are carved out of the span's io,
clamped so conservation survives stragglers stretching the walls.

Per-branch attribution powers the "cost of exploration" breakdown: time
sunk into branches a choose later discarded (executed, evaluated, lost) is
the price of exploring; pruned branches cost nothing — which is exactly
the Table 1 / Fig. 8 win the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .spans import CATEGORIES, Span, SpanProfile, registry_categories

CONSERVATION_TOL = 1e-9


def span_attribution(span: Span) -> Dict[str, float]:
    """One span's seconds split over the exclusive categories."""
    base = registry_categories(
        span.io,
        span.compute,
        span.network,
        span.overhead,
        activity=span.name if span.kind == "activity" else None,
        recovery=span.recovery,
    )
    io = base.get("io", 0.0)
    if io > 0.0 and span.reload_io:
        gating = span.gating_io_node()
        reload = min(span.reload_io.get(gating, 0.0), io) if gating else 0.0
        if reload > 0.0:
            base["io"] = io - reload
            base["reload"] = reload
    return base


def attribution(profile: SpanProfile) -> Dict[str, float]:
    """Makespan split over the categories; asserts conservation to 1e-9."""
    totals = {category: 0.0 for category in CATEGORIES}
    for span in profile.spans:
        for category, seconds in span_attribution(span).items():
            totals[category] += seconds
    if profile.has_spans:
        gap = abs(sum(totals.values()) - profile.makespan)
        if gap > CONSERVATION_TOL * max(1.0, profile.makespan):
            raise AssertionError(
                f"attribution lost {gap} simulated seconds "
                f"(categories sum to {sum(totals.values())}, "
                f"makespan is {profile.makespan})"
            )
    return totals


def per_node_attribution(profile: SpanProfile) -> Dict[str, Dict[str, float]]:
    """Per-node busy seconds by category, plus the idle remainder.

    A node's busy time inside a span is its io + compute share; evaluator
    and recovery spans charge that share to their own category.  ``idle``
    is the makespan minus the node's busy total — non-negative because a
    node's share never exceeds the span's wall (the wall is the maximum
    share, plus network/overhead the node does not carry).
    """
    out: Dict[str, Dict[str, float]] = {
        node: {category: 0.0 for category in CATEGORIES} for node in profile.nodes
    }
    for span in profile.spans:
        whole = (
            "recovery"
            if span.recovery
            else ("evaluator" if span.kind == "activity" and span.name == "choose_evaluation" else None)
        )
        for node in set(span.per_node_io) | set(span.per_node_compute):
            slots = out.setdefault(
                node, {category: 0.0 for category in CATEGORIES}
            )
            io_n = span.per_node_io.get(node, 0.0)
            compute_n = span.per_node_compute.get(node, 0.0)
            if whole is not None:
                slots[whole] += io_n + compute_n
                continue
            reload_n = min(span.reload_io.get(node, 0.0), io_n)
            slots["io"] += io_n - reload_n
            slots["reload"] += reload_n
            slots["compute"] += compute_n
    makespan = profile.makespan
    for node, slots in out.items():
        slots["idle"] = max(0.0, makespan - sum(slots.values()))
    return out


@dataclass
class BranchCost:
    """Simulated seconds one branch consumed, and what became of it."""

    branch: str
    seconds: float
    fate: str  # "kept" | "discarded" | "pruned" | "main"


def branch_attribution(profile: SpanProfile) -> List[BranchCost]:
    """Span time grouped by branch, main-line work under ``(main)``."""
    seconds: Dict[Optional[str], float] = {}
    for span in profile.spans:
        seconds[span.branch] = seconds.get(span.branch, 0.0) + span.duration
    for branch_id, fate in profile.branch_fates.items():
        if fate == "pruned":
            seconds.setdefault(branch_id, 0.0)
    out: List[BranchCost] = []
    for branch_id in sorted(seconds, key=lambda b: (b is not None, b or "")):
        if branch_id is None:
            out.append(BranchCost("(main)", seconds[branch_id], "main"))
        else:
            fate = profile.branch_fates.get(branch_id, "kept")
            out.append(BranchCost(branch_id, seconds[branch_id], fate))
    return out


@dataclass
class ExplorationCost:
    """The price of exploring: time sunk into branches not kept."""

    sunk_seconds: float  # discarded branches (executed, evaluated, lost)
    kept_seconds: float
    pruned_branches: int  # never executed: their cost is ~zero (the win)
    makespan: float

    @property
    def sunk_share(self) -> float:
        return self.sunk_seconds / self.makespan if self.makespan else 0.0


def exploration_cost(profile: SpanProfile) -> ExplorationCost:
    sunk = kept = 0.0
    pruned = 0
    for cost in branch_attribution(profile):
        if cost.fate == "discarded":
            sunk += cost.seconds
        elif cost.fate == "kept":
            kept += cost.seconds
        elif cost.fate == "pruned":
            pruned += 1
    return ExplorationCost(
        sunk_seconds=sunk,
        kept_seconds=kept,
        pruned_branches=pruned,
        makespan=profile.makespan,
    )


__all__ = [
    "BranchCost",
    "CONSERVATION_TOL",
    "ExplorationCost",
    "attribution",
    "branch_attribution",
    "exploration_cost",
    "per_node_attribution",
    "span_attribution",
]
