"""Differential policy testing: *when* may change, *what* may not.

The lab's safety contract for pluggable schedulers: every registered
policy, run over every workload in the zoo, must produce

1. **byte-identical final outputs** — ``repr`` of the sink outputs
   equals the reference policy's, exactly;
2. **identical choose decisions** — per choose, the same kept and the
   same discarded branch lists (in order: exhaustive selections order
   kept sets by score, which is schedule-independent when scores are
   distinct — the zoo's admission rule);
3. **a validator-clean trace** — all seven paper-invariant checkers
   pass (:func:`repro.trace.validate.validate_trace` returns ``[]``);
4. **replay parity** — the metrics registry rebuilt from the trace
   matches the live registry over the guaranteed consistency views
   (:func:`repro.obs.bridge.diff_registries`).

A policy that violates any of these is *changing the job's semantics*,
not its schedule, and must not ship.  The matrix is exercised by
``tests/lab/test_policy_differential.py`` and by ``python -m repro.lab
--differential`` (the CI ``lab-smoke`` job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.bridge import diff_registries, registry_from_trace
from ..trace.validate import validate_trace
from .workloads import available_workloads, get_workload


@dataclass
class DifferentialCell:
    """One (workload, policy) comparison against the reference policy."""

    workload: str
    scheduler: str
    reference: str
    outputs_identical: bool
    decisions_identical: bool
    #: validator violations, stringified (empty = clean)
    violations: List[str] = field(default_factory=list)
    #: live-vs-replayed registry mismatches (empty = parity)
    replay_diffs: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            self.outputs_identical
            and self.decisions_identical
            and not self.violations
            and not self.replay_diffs
        )

    def describe(self) -> str:
        if self.passed:
            return "ok"
        problems = []
        if not self.outputs_identical:
            problems.append("outputs differ")
        if not self.decisions_identical:
            problems.append("choose decisions differ")
        problems.extend(self.violations)
        problems.extend(self.replay_diffs)
        return "; ".join(problems)


def _decision_signature(result) -> Dict[str, Dict[str, List[str]]]:
    """The schedule-independent essence of every choose decision.

    ``kept`` order is part of the signature (score-sorted for top-k,
    domain-sorted for threshold selections — both schedule-independent
    under the zoo's distinct-scores rule).  ``discarded`` and ``pruned``
    are compared as sets: *which* branches lose is semantic, but whether
    a loser was pruned before running or discarded after depends on
    evaluation order, as does the order losses are noticed in."""
    return {
        name: {
            "kept": list(d.kept),
            "lost": sorted([*d.discarded, *d.pruned]),
        }
        for name, d in result.decisions.items()
    }


def compare_cell(
    workload: str,
    scheduler: str,
    reference: str = "bfs",
    memory: str = "amm",
    reference_run=None,
) -> DifferentialCell:
    """Run one policy on one workload and compare against the reference.

    ``reference_run`` (a prior ``(result, cluster)`` pair) avoids
    re-running the reference for every contender."""
    subject = get_workload(workload)
    if reference_run is None:
        reference_run = subject.run(scheduler=reference, memory=memory)
    ref_result, _ = reference_run
    result, cluster = subject.run(scheduler=scheduler, memory=memory)

    outputs_identical = repr(result.outputs) == repr(ref_result.outputs)
    decisions_identical = _decision_signature(result) == _decision_signature(
        ref_result
    )
    violations = [str(v) for v in validate_trace(result.events)]
    replay_diffs = diff_registries(
        cluster.obs, registry_from_trace(result.events)
    )
    return DifferentialCell(
        workload=workload,
        scheduler=scheduler,
        reference=reference,
        outputs_identical=outputs_identical,
        decisions_identical=decisions_identical,
        violations=violations,
        replay_diffs=replay_diffs,
    )


def differential_matrix(
    schedulers: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    reference: str = "bfs",
    memory: str = "amm",
) -> List[DifferentialCell]:
    """Every policy × every workload, compared against ``reference``.

    The reference runs once per workload; each contender (including the
    reference itself, as a self-check) is compared against it."""
    from ..engine.policies import available_schedulers

    schedulers = list(schedulers or available_schedulers())
    workloads = list(workloads or available_workloads("smoke"))
    cells: List[DifferentialCell] = []
    for workload in workloads:
        subject = get_workload(workload)
        reference_run = subject.run(scheduler=reference, memory=memory)
        for scheduler in schedulers:
            cells.append(
                compare_cell(
                    workload,
                    scheduler,
                    reference=reference,
                    memory=memory,
                    reference_run=reference_run,
                )
            )
    return cells


def render_matrix(cells: Sequence[DifferentialCell]) -> str:
    """Text matrix, one row per cell, PASS/FAIL with reasons."""
    header = f"{'workload':<18} {'scheduler':<12} {'vs':<6} {'verdict'}"
    lines = [header, "-" * len(header)]
    for c in cells:
        verdict = "PASS" if c.passed else f"FAIL ({c.describe()})"
        lines.append(f"{c.workload:<18} {c.scheduler:<12} {c.reference:<6} {verdict}")
    failed = [c for c in cells if not c.passed]
    lines.append(
        f"{len(cells) - len(failed)}/{len(cells)} cells byte-identical "
        f"and validator-clean"
    )
    return "\n".join(lines)


def assert_differential(
    schedulers: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    reference: str = "bfs",
) -> List[DifferentialCell]:
    """Run the matrix; raise ``AssertionError`` on any failing cell."""
    cells = differential_matrix(schedulers, workloads, reference=reference)
    failed = [c for c in cells if not c.passed]
    if failed:
        details = "\n".join(
            f"  {c.workload} × {c.scheduler}: {c.describe()}" for c in failed
        )
        raise AssertionError(
            f"{len(failed)} differential cell(s) violate the "
            f"when-not-what contract:\n{details}"
        )
    return cells


__all__ = [
    "DifferentialCell",
    "assert_differential",
    "compare_cell",
    "differential_matrix",
    "render_matrix",
]
