"""The policy lab: comparative scheduler/eviction experiments.

Three pieces (see ``docs/scheduling.md`` for the walkthrough):

* :mod:`repro.lab.workloads` — the workload zoo: named, reproducible
  MDF + cluster pairs with tags (``smoke`` = CI tier);
* :mod:`repro.lab.experiment` — the accasim-style
  :class:`~repro.lab.experiment.Experimentation` harness running every
  policy × workload × cluster-size cell and emitting comparative tables
  (text + JSON artifact) and perf-gate baselines;
* :mod:`repro.lab.differential` — differential policy testing: every
  registered scheduler must produce byte-identical outputs and
  validator-clean traces on every zoo workload ("policies may change
  *when*, never *what*").

Run the whole lab from the command line::

    python -m repro.lab --policies all --workloads smoke
"""

from .differential import (
    DifferentialCell,
    assert_differential,
    compare_cell,
    differential_matrix,
    render_matrix,
)
from .experiment import CellResult, Experimentation, LabReport
from .workloads import (
    WORKLOADS,
    LabWorkload,
    available_workloads,
    get_workload,
    register_workload,
)

__all__ = [
    "CellResult",
    "DifferentialCell",
    "Experimentation",
    "LabReport",
    "LabWorkload",
    "WORKLOADS",
    "assert_differential",
    "available_workloads",
    "compare_cell",
    "differential_matrix",
    "get_workload",
    "register_workload",
    "render_matrix",
]
