"""The scheduler/eviction experiment harness (accasim-style).

One :class:`Experimentation` runs every scheduling policy over every
workload (× eviction policy × cluster size) under identical conditions
and collects the comparative numbers the paper's evaluation reports:
completion time, exploration cost, memory hit ratio, branch counts and
the profiler's exclusive time-category breakdown.  The produced
:class:`LabReport` renders a text table, serialises to a JSON artifact
(the CI ``lab-smoke`` job uploads it) and exports pinned baselines for
the perf-regression gate (``repro.prof --gate``).

Simulated time is deterministic, so every number here is exact and
reproducible — two runs of the same cell are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..prof.spans import CATEGORIES
from ..trace.validate import validate_trace
from .workloads import LabWorkload, available_workloads, get_workload


@dataclass
class CellResult:
    """Everything measured for one (workload, scheduler, memory, size) cell."""

    workload: str
    scheduler: str
    memory: str
    workers: int
    #: execution backend the cell ran on (``"serial"``/``"mp"``); never
    #: changes the simulated numbers, only real wall-clock
    backend: str
    completion_time: float
    #: total modelled work paid across all branches (compute + io + network
    #: seconds) — the paper's *exploration cost* axis
    exploration_cost: float
    memory_hit_ratio: float
    branches_executed: int
    branches_pruned: int
    stages_executed: int
    evictions: int
    #: profiler category -> attributed seconds (from the obs registry)
    profile: Dict[str, float] = field(default_factory=dict)
    #: trace-validator violations (must stay 0 for every policy)
    violations: int = 0
    #: live-layer observations (``Experimentation(live=True)`` only):
    #: watchdog alerts raised, final |ETA − completion_time| (must be 0
    #: — the estimator converges exactly), and whether the streamed
    #: NDJSON matched the post-hoc export byte-for-byte
    live_alerts: int = 0
    live_eta_error: Optional[float] = None
    live_stream_identical: Optional[bool] = None


@dataclass
class LabReport:
    """The comparative outcome of one experimentation sweep."""

    cells: List[CellResult] = field(default_factory=list)

    # ------------------------------------------------------------- queries
    def for_workload(self, name: str) -> List[CellResult]:
        return [c for c in self.cells if c.workload == name]

    def best_policy(self, workload: str) -> Optional[str]:
        """Scheduler with the lowest completion time on ``workload``."""
        cells = self.for_workload(workload)
        if not cells:
            return None
        return min(cells, key=lambda c: c.completion_time).scheduler

    # ----------------------------------------------------------- rendering
    def render_table(self) -> str:
        """Fixed-width comparative table, one row per cell."""
        header = (
            f"{'workload':<18} {'sched':<12} {'memory':<14} {'bknd':<6} "
            f"{'wrk':>3} {'t_complete':>10} {'expl_cost':>10} {'hit':>6} "
            f"{'br_x':>5} {'br_p':>5} {'evict':>6} {'viol':>4}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            lines.append(
                f"{c.workload:<18} {c.scheduler:<12} {c.memory:<14} "
                f"{c.backend:<6} {c.workers:>3} {c.completion_time:>10.4f} "
                f"{c.exploration_cost:>10.4f} {c.memory_hit_ratio:>6.3f} "
                f"{c.branches_executed:>5} {c.branches_pruned:>5} "
                f"{c.evictions:>6} {c.violations:>4}"
            )
        for workload in dict.fromkeys(c.workload for c in self.cells):
            best = self.best_policy(workload)
            lines.append(f"best on {workload}: {best}")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {"cells": [asdict(c) for c in self.cells]}

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # ------------------------------------------------------- gate baselines
    def baseline_scenarios(self) -> Dict[str, float]:
        """Pinned completion times for the perf gate, one per cell.

        Keys follow the gate's scenario naming
        (``lab_<workload>_<scheduler>``); simulated time is exact, so
        these are stable across machines.  Only ``serial``-backend cells
        are exported — backends are required to match it exactly, so a
        second backend would only produce duplicate keys."""
        return {
            f"lab_{c.workload}_{c.scheduler}": c.completion_time
            for c in self.cells
            if c.backend == "serial"
        }


class Experimentation:
    """Run every policy over every workload under identical conditions.

    The accasim experimentation pattern: one object owns the cross
    product of independent variables (scheduling policy, eviction
    policy, workload, cluster size), runs each cell on a fresh cluster
    and funnels the per-cell observations into a single comparative
    report.

    Parameters
    ----------
    schedulers:
        Scheduler registry names to compare (default: all registered).
    memories:
        Eviction-policy names crossed in (default: just ``"amm"``).
    workloads:
        Zoo workload names (default: the ``"smoke"`` tier).
    cluster_sizes:
        Worker counts to sweep; ``None`` entries use each workload's own
        default shape (default: ``[None]``).
    validate:
        Run the seven trace validators per cell and record the violation
        count (default True — the lab exists to prove policies safe).
    live:
        Monitor every cell with :mod:`repro.live` (default False) and
        record per-cell ``live_alerts``, ``live_eta_error`` and
        ``live_stream_identical`` — exercising the streaming layer
        across the whole policy × workload matrix.
    backends:
        Execution backends crossed in (default: just ``"serial"``).
        Adding ``"mp"`` doubles the matrix and proves — cell by cell —
        that backend choice never moves a simulated number.
    """

    def __init__(
        self,
        schedulers: Optional[Sequence[str]] = None,
        memories: Sequence[str] = ("amm",),
        workloads: Optional[Sequence[str]] = None,
        cluster_sizes: Sequence[Optional[int]] = (None,),
        validate: bool = True,
        live: bool = False,
        backends: Sequence[str] = ("serial",),
    ):
        from ..engine.policies import available_schedulers

        self.schedulers = list(schedulers or available_schedulers())
        self.memories = list(memories)
        self.workloads = list(workloads or available_workloads("smoke"))
        self.cluster_sizes = list(cluster_sizes)
        self.validate = validate
        self.live = live
        self.backends = list(backends)

    def cells(self) -> List[Dict]:
        """The cross product this experimentation will run."""
        return [
            dict(workload=w, scheduler=s, memory=m, workers=n, backend=b)
            for w in self.workloads
            for s in self.schedulers
            for m in self.memories
            for n in self.cluster_sizes
            for b in self.backends
        ]

    def run_cell(
        self,
        workload: str,
        scheduler: str,
        memory: str = "amm",
        workers: Optional[int] = None,
        backend: str = "serial",
    ) -> CellResult:
        """Execute one cell and collect its measurements."""
        subject: LabWorkload = get_workload(workload)
        monitor = stream_buffer = None
        if self.live:
            import io

            from ..live import LiveMonitor

            stream_buffer = io.StringIO()
            monitor = LiveMonitor(stream=stream_buffer)
        result, cluster = subject.run(
            scheduler=scheduler, memory=memory, workers=workers,
            live=monitor if monitor is not None else False,
            backend=backend,
        )
        live_alerts = 0
        live_eta_error = None
        live_stream_identical = None
        if monitor is not None:
            live_alerts = len(monitor.alerts)
            snap = monitor.snapshot()
            if snap.eta is not None:
                live_eta_error = abs(snap.eta - result.completion_time)
            live_stream_identical = (
                result.events is not None
                and stream_buffer.getvalue() == result.events.to_jsonl()
            )
        registry = cluster.obs
        profile = {
            category: registry.value(f"profile_{category}_seconds")
            for category in CATEGORIES
        }
        violations = (
            len(validate_trace(result.events))
            if self.validate and result.events is not None
            else 0
        )
        m = result.metrics
        return CellResult(
            workload=workload,
            scheduler=scheduler,
            memory=memory,
            workers=workers or subject.workers,
            backend=backend,
            completion_time=result.completion_time,
            exploration_cost=m.total_time,
            memory_hit_ratio=m.memory_hit_ratio,
            branches_executed=m.branches_executed,
            branches_pruned=m.branches_pruned,
            stages_executed=m.stages_executed,
            evictions=m.evictions,
            profile=profile,
            violations=violations,
            live_alerts=live_alerts,
            live_eta_error=live_eta_error,
            live_stream_identical=live_stream_identical,
        )

    def run(
        self, progress: Optional[Callable[[str], None]] = None
    ) -> LabReport:
        """Run every cell; ``progress`` (if given) gets one line per cell."""
        report = LabReport()
        for spec in self.cells():
            cell = self.run_cell(**spec)
            report.cells.append(cell)
            if progress is not None:
                progress(
                    f"{cell.workload} × {cell.scheduler} × {cell.memory}: "
                    f"t={cell.completion_time:.4f}s "
                    f"hit={cell.memory_hit_ratio:.3f} "
                    f"violations={cell.violations}"
                )
        return report


__all__ = [
    "CellResult",
    "Experimentation",
    "LabReport",
]
