"""The policy lab's workload zoo.

Each :class:`LabWorkload` bundles an MDF factory with the cluster shape
it should run on, so every experiment cell (policy × workload ×
cluster size) is reproducible from its name alone.

Zoo admission rule — the differential contract (``repro.lab.
differential``) demands that every workload's final outputs be
*order-insensitive*: whatever order a scheduler evaluates branches in,
the choose must keep the same set.  Exhaustive selections (``Min``,
``Max``, ``TopK``, ``Threshold``) with **distinct branch scores**
satisfy this; non-exhaustive first-k selections (``KThreshold``,
``KInterval``) are order-sensitive *by design* (Fig. 8 exploits exactly
that) and are therefore excluded from the zoo.  Every builder below
keeps branch scores distinct on purpose.

Workloads tagged ``"smoke"`` finish in well under a second each and form
the CI tier; ``"full"`` adds the paper-shaped jobs (time series,
synthetic nested grid) for local studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..cluster.costmodel import GB, MB
from ..core.builder import MDFBuilder
from ..core.evaluators import CallableEvaluator
from ..core.mdf import MDF
from ..core.selection import Max, Min, Threshold, TopK
from ..engine.job import EngineConfig, JobResult
from ..engine.runner import run_mdf


@dataclass
class LabWorkload:
    """One experiment subject: an MDF plus the cluster it runs on."""

    name: str
    description: str
    make_mdf: Callable[[], MDF]
    workers: int = 4
    mem_per_worker: int = 1 * GB
    tags: Tuple[str, ...] = ()
    #: engine knobs for the run; fresh per cell (configs hold hint state)
    make_config: Callable[[], EngineConfig] = EngineConfig

    def make_cluster(self, workers: Optional[int] = None) -> Cluster:
        """A fresh cluster for one cell (worker count overridable)."""
        return Cluster(
            num_workers=workers or self.workers,
            mem_per_worker=self.mem_per_worker,
        )

    def run(
        self,
        scheduler: str = "bas",
        memory: str = "amm",
        workers: Optional[int] = None,
        validate: bool = False,
        live=None,
        backend=None,
    ) -> Tuple[JobResult, Cluster]:
        """Execute one cell and return the result with its cluster.

        The cluster is returned alongside so callers can read the live
        metrics registry (``cluster.obs``) — the differential matrix
        replays the trace against it.  ``live`` passes straight through
        to :func:`~repro.engine.runner.run_mdf` (a
        :class:`~repro.live.monitor.LiveMonitor`, a stream target, or
        ``True`` for the default monitor); the attached monitor comes
        back as ``result.live``.  ``backend`` picks the execution
        backend (``"serial"``/``"mp"`` or an instance); the simulated
        result is byte-identical either way.
        """
        cluster = self.make_cluster(workers)
        result = run_mdf(
            self.make_mdf(),
            cluster,
            scheduler=scheduler,
            memory=memory,
            config=self.make_config(),
            validate=validate,
            live=live,
            backend=backend,
        )
        return result, cluster


# ------------------------------------------------------------- MDF builders


def _filter_min_mdf(
    thresholds=(10, 100, 500), nominal: int = 64 * MB, data_n: int = 1000
) -> MDF:
    """Threshold-filter explore; keep the branch with the fewest rows.

    Branch scores are the surviving row counts — strictly increasing in
    the threshold, hence distinct."""
    b = MDFBuilder("lab-filter-min")
    src = b.read_data(list(range(data_n)), name="src", nominal_bytes=nominal)
    result = src.explore(
        {"threshold": list(thresholds)},
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
        name="explore-threshold",
    ).choose(CallableEvaluator(len, name="row-count"), Min(), name="choose-fewest")
    result.write(name="out")
    return b.build()


def _nested_max_mdf(
    outer=(2, 3), inner=(5, 7), nominal: int = 64 * MB, data_n: int = 400
) -> MDF:
    """Nested explore; products 10/14/15/21 keep every score distinct."""
    b = MDFBuilder("lab-nested-max")
    src = b.read_data(list(range(data_n)), name="src", nominal_bytes=nominal)
    score = CallableEvaluator(
        lambda xs: float(max(xs)) if xs else 0.0, name="max-value"
    )

    def inner_branch(pipe, p):
        return pipe.transform(
            lambda xs, m=p["m"]: [x * m for x in xs], name=f"mul-{p['_o']}-{p['m']}"
        )

    def outer_branch(pipe, p):
        first = pipe.transform(
            lambda xs, m=p["o"]: [x * m for x in xs], name=f"mul-{p['o']}"
        )
        return first.explore(
            {"m": list(inner), "_o": [p["o"]]},
            inner_branch,
            name=f"explore-inner-{p['o']}",
        ).choose(score, Max(), name=f"choose-inner-{p['o']}")

    result = src.explore({"o": list(outer)}, outer_branch, name="explore-outer").choose(
        score, Max(), name="choose-outer"
    )
    result.write(name="out")
    return b.build()


def _wide_topk_mdf(
    scales=(3, 1, 4, 9, 2, 6, 8, 5), k: int = 3, nominal: int = 32 * MB
) -> MDF:
    """One wide explore (8 branches), keep the top-``k`` by scaled sum.

    Distinct scale factors give distinct scores; the shuffled domain
    order ensures the winners are *not* a domain prefix, so a scheduler
    that reorders evaluation gets exercised against real reordering."""
    b = MDFBuilder("lab-wide-topk")
    src = b.read_data(list(range(1, 201)), name="src", nominal_bytes=nominal)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")
    result = src.explore(
        {"s": list(scales)},
        lambda pipe, p: pipe.transform(
            lambda xs, s=p["s"]: [x * s for x in xs], name=f"scale-{p['s']}"
        ),
        name="explore-scale",
    ).choose(score, TopK(k), name="choose-top")
    result.write(name="out")
    return b.build()


def _threshold_keepers_mdf(
    cutoffs=(50, 150, 400, 800), nominal: int = 32 * MB, data_n: int = 1000
) -> MDF:
    """Exhaustive ``Threshold`` selection: every branch judged on its own.

    Per-branch independent keep/discard is order-insensitive regardless
    of score spacing — the multi-keeper counterpart to top-k."""
    b = MDFBuilder("lab-threshold")
    src = b.read_data(list(range(data_n)), name="src", nominal_bytes=nominal)
    ratio = CallableEvaluator(lambda xs: len(xs) / data_n, name="kept-ratio")
    result = src.explore(
        {"c": list(cutoffs)},
        lambda pipe, p: pipe.transform(
            lambda xs, c=p["c"]: [x for x in xs if x < c], name=f"cut-{p['c']}"
        ),
        name="explore-cutoff",
    ).choose(ratio, Threshold(0.25, above=True), name="choose-keepers")
    result.write(name="out")
    return b.build()


def _dl_grid_mdf() -> MDF:
    """Compute-heavy hyper-parameter grid: real SGD training per branch.

    The service/loadgen shared workload.  Four distinct (rate, momentum)
    combinations give distinct validation accuracies (seeded training),
    and re-training a branch is far costlier than a modelled disk read —
    so *store-tier* hits pass the profitability gate, which the cheap
    filter workloads never do.  Pair with the materialised-choose config
    below so losing branches are written behind to the shared store."""
    from ..workloads.datagen import cifar_like
    from ..workloads.deeplearning import MLPTrainer
    from ..workloads.mdfs import deep_learning_mdf

    data = cifar_like(n_samples=600, features=64, seed=17)
    trainer = MLPTrainer(hidden=16, epochs=5, seed=3)
    return deep_learning_mdf(
        data,
        mode="hyper_only",
        trainer=trainer,
        rates=(0.005, 0.05),
        momenta=(0.0, 0.9),
        nominal_bytes=1 * GB,
    )


def _dl_grid_config() -> EngineConfig:
    # materialised choose (the fig05 pattern): losing branch results live
    # long enough to be written behind to the store tier, so a later
    # tenant's run reuses every branch, not just the winner's
    return EngineConfig(pruning=False, incremental_choose=False)


def _time_series_mdf() -> MDF:
    """The paper's time-series job (Fig. 22) at lab scale."""
    from ..workloads.datagen import oil_well_trace
    from ..workloads.mdfs import time_series_mdf
    from ..workloads.timeseries import TimeSeriesGrid

    trace = oil_well_trace(n=2_000, seed=11)
    grid = TimeSeriesGrid(windows=(3, 5), thresholds=(1.0, 2.0))
    return time_series_mdf(trace, grid, nominal_bytes=48 * MB)


def _synthetic_grid_mdf() -> MDF:
    """The synthetic nested-explore job (Fig. 23) at lab scale."""
    from ..workloads.datagen import string_int_pairs
    from ..workloads.mdfs import synthetic_mdf

    return synthetic_mdf(string_int_pairs(n=200, seed=23), b1=2, b2=2, nominal_bytes=32 * MB)


# --------------------------------------------------------------------- zoo

#: name -> workload; iteration order is registration order
WORKLOADS: Dict[str, LabWorkload] = {}


def register_workload(workload: LabWorkload) -> None:
    """Admit a workload to the zoo (names are unique)."""
    if workload.name in WORKLOADS:
        raise ValueError(f"workload {workload.name!r} already registered")
    WORKLOADS[workload.name] = workload


def available_workloads(tag: Optional[str] = None) -> List[str]:
    """Zoo workload names, optionally restricted to one tag."""
    return [
        name
        for name, w in WORKLOADS.items()
        if tag is None or tag in w.tags
    ]


def get_workload(name: str) -> LabWorkload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (registered: {sorted(WORKLOADS)})"
        ) from None


register_workload(
    LabWorkload(
        name="filter_min",
        description="3-branch threshold filter, keep fewest rows (Min)",
        make_mdf=_filter_min_mdf,
        workers=4,
        tags=("smoke", "full"),
    )
)
register_workload(
    LabWorkload(
        name="nested_topk",
        description="2x2 nested explore, keep max value per scope (Max)",
        make_mdf=_nested_max_mdf,
        workers=4,
        tags=("smoke", "full"),
    )
)
register_workload(
    LabWorkload(
        name="starved_explore",
        description="filter_min under memory starvation (2 workers, 48 MB)",
        make_mdf=lambda: _filter_min_mdf(nominal=64 * MB),
        workers=2,
        mem_per_worker=48 * MB,
        tags=("smoke", "full"),
    )
)
register_workload(
    LabWorkload(
        name="wide_topk",
        description="8-branch wide explore, keep top-3 by sum (TopK)",
        make_mdf=_wide_topk_mdf,
        workers=4,
        tags=("full",),
    )
)
register_workload(
    LabWorkload(
        name="threshold_keepers",
        description="4-branch explore with per-branch Threshold keeps",
        make_mdf=_threshold_keepers_mdf,
        workers=4,
        tags=("full",),
    )
)
register_workload(
    LabWorkload(
        name="time_series",
        description="paper time-series job (Fig. 22) at lab scale",
        make_mdf=_time_series_mdf,
        workers=4,
        mem_per_worker=256 * MB,
        tags=("full",),
    )
)
register_workload(
    LabWorkload(
        name="synthetic_grid",
        description="paper synthetic nested grid (Fig. 23) at lab scale",
        make_mdf=_synthetic_grid_mdf,
        workers=4,
        mem_per_worker=256 * MB,
        tags=("full",),
    )
)
register_workload(
    LabWorkload(
        name="dl_grid",
        description="compute-heavy DL hyper grid (real SGD), materialised choose",
        make_mdf=_dl_grid_mdf,
        workers=4,
        mem_per_worker=4 * GB,
        tags=("service",),
        make_config=_dl_grid_config,
    )
)
# Per-tenant private workloads for the loadgen's overlap control: same
# shape as filter_min but distinct thresholds *and* data sizes, so no two
# tenants' private fingerprints collide (zero cross-tenant overlap).
for _i, (_thresholds, _data_n) in enumerate(
    [
        ((11, 101, 501), 600),
        ((12, 102, 502), 700),
        ((13, 103, 503), 800),
        ((14, 104, 504), 900),
    ]
):
    register_workload(
        LabWorkload(
            name=f"svc_private_t{_i}",
            description=(
                f"tenant-{_i} private filter grid "
                f"(thresholds {_thresholds}, n={_data_n})"
            ),
            make_mdf=lambda t=_thresholds, n=_data_n: _filter_min_mdf(
                thresholds=t, data_n=n
            ),
            workers=4,
            tags=("service",),
        )
    )
