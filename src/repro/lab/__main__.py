"""CLI for the policy lab: ``python -m repro.lab``.

Runs the comparative experimentation sweep and (by default) the
differential when-not-what matrix, prints both tables and optionally
writes a JSON artifact the CI ``lab-smoke`` job uploads.

Examples::

    python -m repro.lab --policies all --workloads smoke
    python -m repro.lab --policies heft,wsteal --workloads full \
        --memories amm,lru --artifact lab_results.json
    python -m repro.lab --no-differential --sizes 2,4,8
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..engine.policies import available_schedulers
from .differential import differential_matrix, render_matrix
from .experiment import Experimentation
from .workloads import available_workloads


def _parse_names(spec: str, universe: List[str], label: str) -> List[str]:
    """Resolve a comma list / ``all`` / a tag keyword against ``universe``."""
    if spec == "all":
        return universe
    names = [n.strip() for n in spec.split(",") if n.strip()]
    unknown = [n for n in names if n not in universe]
    if unknown:
        raise SystemExit(
            f"unknown {label} {unknown} (available: {universe})"
        )
    return names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lab",
        description="comparative scheduler/eviction policy experiments",
    )
    parser.add_argument(
        "--policies",
        default="all",
        help="comma list of scheduler names, or 'all' (default)",
    )
    parser.add_argument(
        "--workloads",
        default="smoke",
        help="comma list of zoo workload names, or a tag: 'smoke' "
        "(default) / 'full' / 'all'",
    )
    parser.add_argument(
        "--memories",
        default="amm",
        help="comma list of eviction-policy names crossed in (default: amm)",
    )
    parser.add_argument(
        "--sizes",
        default="",
        help="comma list of worker counts to sweep (default: each "
        "workload's own shape)",
    )
    parser.add_argument(
        "--backends",
        default="serial",
        help="comma list of execution backends crossed in (default: "
        "serial; add mp to prove backend choice never moves a simulated "
        "number)",
    )
    parser.add_argument(
        "--reference",
        default="bfs",
        help="reference policy for the differential matrix (default: bfs)",
    )
    parser.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="write the comparative report + differential matrix as JSON",
    )
    parser.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the when-not-what differential matrix",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    args = parser.parse_args(argv)

    schedulers = _parse_names(args.policies, available_schedulers(), "scheduler")
    if args.workloads in ("smoke", "full"):
        workloads = available_workloads(args.workloads)
    else:
        workloads = _parse_names(
            args.workloads, available_workloads(), "workload"
        )
    from ..cluster.memory import available_policies

    memories = _parse_names(args.memories, available_policies(), "memory policy")
    from ..engine.backends import available_backends

    backends = _parse_names(args.backends, available_backends(), "backend")
    sizes = (
        [int(s) for s in args.sizes.split(",") if s.strip()]
        if args.sizes
        else [None]
    )

    progress = None if args.quiet else lambda line: print(f"  {line}")
    experiment = Experimentation(
        schedulers=schedulers,
        memories=memories,
        workloads=workloads,
        cluster_sizes=sizes,
        backends=backends,
    )
    print(
        f"policy lab: {len(schedulers)} schedulers × {len(workloads)} "
        f"workloads × {len(memories)} memory policies × "
        f"{len(sizes)} cluster sizes × {len(backends)} backends"
    )
    report = experiment.run(progress=progress)
    print()
    print(report.render_table())

    artifact = {"experiment": report.to_json()}
    ok = True
    if not args.no_differential:
        print()
        cells = differential_matrix(
            schedulers=schedulers,
            workloads=workloads,
            reference=args.reference,
        )
        print(render_matrix(cells))
        ok = all(c.passed for c in cells)
        artifact["differential"] = [
            {
                "workload": c.workload,
                "scheduler": c.scheduler,
                "reference": c.reference,
                "passed": c.passed,
                "detail": c.describe(),
            }
            for c in cells
        ]

    if args.artifact:
        with open(args.artifact, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nartifact written to {args.artifact}")

    if not ok:
        print("\ndifferential matrix FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
