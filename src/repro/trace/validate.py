"""Paper-invariant validators over decision traces.

Each checker replays a :class:`~repro.trace.events.Trace` and returns the
list of :class:`Violation` records it found (empty = invariant holds):

* :func:`check_depth_first` — Algorithm 1: between an explore and its
  choose the schedule is depth-first.  Whenever a ready successor of the
  last executed stage existed, the scheduler must have taken one of them
  (a ready choose stage may preempt, as the algorithm finalises scopes as
  early as possible); only with no ready successor may it fall back to the
  pending branch queue.
* :func:`check_amm_ranking` — Algorithm 2: every AMM eviction picked the
  in-memory partition minimising ``pre(d) = acc(d) · δ(n, d) · α`` (ties
  broken towards least-recently-used, then key order), the recorded
  preferences are consistent with the recorded ``acc``/size/``α`` inputs,
  and dead data (``acc = 0``) was dropped without a spill (R4).
* :func:`check_pruning_sound` — Table 1: every pruned branch carries the
  evaluator/selection properties that justify pruning (associative
  selection plus monotone/convex evaluator or non-exhaustive selection),
  and no pruned stage or branch shows any activity afterwards.
* :func:`check_no_use_after_discard` — R3 safety: no partition of a
  dataset is ever read after the dataset was discarded (or absorbed into
  a composite and then discarded).
* :func:`check_recovery_sound` — §5 recovery: once a partition is marked
  for recomputation (``recovery_started``), no read of it may occur until
  its recompute lands (``partition_stored`` or a fresh registration), and
  every marked partition is eventually rebuilt or discarded.
* :func:`check_cache_sound` — result-cache soundness: a cache hit serves
  exactly the bytes its admit recorded, never lands on an invalidated
  entry, and the dataset it materialises registers with the promised size
  (a hit never changes output bytes vs. cold execution).
* :func:`check_profile_conserved` — profiler conservation: the recorded
  spans (extended ``stage_completed`` plus ``span`` events) tile the
  makespan with no gaps or overlaps, each span's component breakdown sums
  to its wall to 1e-9, and no node's share exceeds the span's wall — so
  every simulated second is attributable to exactly one category
  (:mod:`repro.prof`).

``validate_trace`` runs all seven; ``assert_valid`` raises
:class:`InvariantViolation` listing every violation.  The module-level
auto-validate flag lets the benchmark harness (``python -m repro.bench
--validate``) check every figure-reproduction run for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from .events import Trace


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored to the offending event."""

    check: str
    seq: int
    message: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.check}] event #{self.seq}: {self.message}"


class InvariantViolation(AssertionError):
    """Raised by :func:`assert_valid` when any invariant checker fails."""

    def __init__(self, violations: List[Violation]):
        self.violations = violations
        lines = "\n".join(f"  [{v.check}] event #{v.seq}: {v.message}" for v in violations)
        super().__init__(f"{len(violations)} trace invariant violation(s):\n{lines}")


# ----------------------------------------------------------------- Algorithm 1


def check_depth_first(trace: Trace) -> List[Violation]:
    """Algorithm 1's depth-first discipline over ``stage_scheduled`` events.

    Only decisions made by a branch-aware scheduler (``scheduler == "bas"``)
    are constrained; BFS and custom schedulers pass vacuously.
    """
    violations: List[Violation] = []
    for event in trace.filter("stage_scheduled"):
        data = event.data
        if data.get("scheduler") != "bas":
            continue
        picked = data["stage"]
        successors = list(data["successors_ready"])
        ready = list(data["ready"])
        chooses = set(data["ready_choose"])
        candidates = successors if successors else ready
        candidate_chooses = [c for c in candidates if c in chooses]
        if candidate_chooses:
            if picked not in candidate_chooses:
                violations.append(
                    Violation(
                        "depth_first",
                        event.seq,
                        f"a choose stage {candidate_chooses} was a candidate but "
                        f"{picked!r} was scheduled (chooses must run as early as possible)",
                    )
                )
        elif picked not in candidates:
            violations.append(
                Violation(
                    "depth_first",
                    event.seq,
                    f"ready successors {successors} of the last stage existed but "
                    f"{picked!r} was scheduled (schedule is not depth-first)",
                )
            )
    return violations


# ----------------------------------------------------------------- Algorithm 2


def check_amm_ranking(trace: Trace, alpha: Optional[float] = None) -> List[Violation]:
    """Algorithm 2's eviction ranking over ``partition_evicted`` events.

    ``alpha`` overrides the recorded hardware cost ratio (useful when
    validating a trace against the cost model it *should* have used);
    by default each event's own recorded ``α`` is used.  Only evictions
    decided by the full AMM policy (``policy == "amm"``) are constrained —
    LRU and the ablation policies make no ``pre(d)`` promise.
    """
    violations: List[Violation] = []
    for event in trace.filter("partition_evicted"):
        data = event.data
        if data.get("policy") != "amm":
            continue
        ranking = data["ranking"]
        if not ranking or any("pre" not in entry for entry in ranking):
            violations.append(
                Violation(
                    "amm_ranking",
                    event.seq,
                    "eviction by an 'amm' policy recorded no pre(d) ranking snapshot",
                )
            )
            continue
        a = alpha if alpha is not None else data["alpha"]
        # the recorded preferences must be the formula applied to the inputs
        for entry in ranking:
            if entry.get("acc") is None:
                continue
            expected = entry["acc"] * entry["nbytes"] * a
            if not math.isclose(expected, entry["pre"], rel_tol=1e-9, abs_tol=1e-12):
                violations.append(
                    Violation(
                        "amm_ranking",
                        event.seq,
                        f"recorded pre={entry['pre']} for {entry['dataset']!r}[{entry['index']}] "
                        f"does not match acc·size·α = {entry['acc']}·{entry['nbytes']}·{a} "
                        f"= {expected}",
                    )
                )
        # the victim must minimise (pre, last_access, key) over the candidates
        def order_key(entry: Dict[str, Any]):
            return (entry["pre"], entry["last_access"], (entry["dataset"], entry["index"]))

        victim_key = (data["dataset"], data["index"])
        victim = next(
            (e for e in ranking if (e["dataset"], e["index"]) == victim_key), None
        )
        if victim is None:
            violations.append(
                Violation(
                    "amm_ranking",
                    event.seq,
                    f"victim {victim_key} is not among the eviction candidates",
                )
            )
            continue
        best = min(ranking, key=order_key)
        if order_key(victim) != order_key(best):
            violations.append(
                Violation(
                    "amm_ranking",
                    event.seq,
                    f"evicted {victim_key} with pre={victim['pre']} but "
                    f"({best['dataset']!r}, {best['index']}) had lower preference "
                    f"pre={best['pre']}",
                )
            )
        # R4: dead data (acc = 0) is dropped for free, live data is spilled
        if victim.get("acc") is not None:
            should_spill = victim["acc"] > 0
            if bool(data["spilled"]) != should_spill:
                violations.append(
                    Violation(
                        "amm_ranking",
                        event.seq,
                        f"victim {victim_key} has acc={victim['acc']} but "
                        f"spilled={data['spilled']} (dead data must drop free, "
                        f"live data must spill)",
                    )
                )
    return violations


# -------------------------------------------------------------------- Table 1


def _prune_justified(properties: Mapping[str, Any]) -> bool:
    """Table 1: associative selection AND (monotone | convex | non-exhaustive)."""
    return bool(properties.get("associative")) and (
        bool(properties.get("monotone"))
        or bool(properties.get("convex"))
        or bool(properties.get("non_exhaustive"))
    )


def check_pruning_sound(
    trace: Trace, table1: Optional[Mapping[str, Any]] = None
) -> List[Violation]:
    """Every ``branch_pruned`` event must be justified by the Table 1 matrix.

    ``table1`` optionally maps choose names to the expected optimisation
    plan (an :class:`~repro.core.optimizations.OptimizationPlan` or a dict
    with ``prune_superfluous``/``discard_incrementally``); recorded plans
    are checked against it.  Pruned branches and their stages must show no
    later activity (no evaluation, scheduling or completion).
    """
    violations: List[Violation] = []
    pruned_stages: Dict[str, int] = {}  # stage id -> seq of the prune event
    pruned_branches: Dict[tuple, int] = {}  # (choose, branch) -> seq
    for event in trace:
        data = event.data
        if event.kind == "branch_pruned":
            properties = data["properties"]
            plan = data["plan"]
            if not plan.get("prune_superfluous"):
                violations.append(
                    Violation(
                        "pruning_sound",
                        event.seq,
                        f"branch {data['branch']!r} pruned although the recorded "
                        f"optimisation plan forbids superfluous-branch pruning",
                    )
                )
            if not _prune_justified(properties):
                violations.append(
                    Violation(
                        "pruning_sound",
                        event.seq,
                        f"branch {data['branch']!r} pruned but the evaluator/selection "
                        f"properties {properties} do not justify it (Table 1)",
                    )
                )
            if table1 is not None and data["choose"] in table1:
                expected = table1[data["choose"]]
                expected_prune = (
                    expected.get("prune_superfluous")
                    if isinstance(expected, Mapping)
                    else getattr(expected, "prune_superfluous")
                )
                if not expected_prune:
                    violations.append(
                        Violation(
                            "pruning_sound",
                            event.seq,
                            f"choose {data['choose']!r} must not prune per the "
                            f"provided Table 1 row, yet branch {data['branch']!r} "
                            f"was pruned",
                        )
                    )
            for stage_id in data["stages"]:
                pruned_stages.setdefault(stage_id, event.seq)
            pruned_branches.setdefault((data["choose"], data["branch"]), event.seq)
        elif event.kind in ("stage_scheduled", "stage_completed"):
            stage_id = data["stage"]
            if stage_id in pruned_stages:
                violations.append(
                    Violation(
                        "pruning_sound",
                        event.seq,
                        f"stage {stage_id!r} was pruned at event "
                        f"#{pruned_stages[stage_id]} but later {event.kind}",
                    )
                )
        elif event.kind == "branch_evaluated":
            key = (data["choose"], data["branch"])
            if key in pruned_branches:
                violations.append(
                    Violation(
                        "pruning_sound",
                        event.seq,
                        f"branch {data['branch']!r} was pruned at event "
                        f"#{pruned_branches[key]} but later evaluated",
                    )
                )
    return violations


# ------------------------------------------------------------------ R3 safety


def check_no_use_after_discard(trace: Trace) -> List[Violation]:
    """No ``dataset_access`` may target a discarded (or absorbed) dataset."""
    violations: List[Violation] = []
    live: set = set()
    gone: Dict[str, int] = {}  # dataset id -> seq of discard/absorb event
    for event in trace:
        data = event.data
        if event.kind == "dataset_registered":
            live.add(data["dataset"])
            gone.pop(data["dataset"], None)
        elif event.kind == "composite_registered":
            live.add(data["dataset"])
            gone.pop(data["dataset"], None)
            for member in data["members"]:
                # members are absorbed: future reads must go via the composite
                live.discard(member)
                gone[member] = event.seq
        elif event.kind == "dataset_discarded":
            live.discard(data["dataset"])
            gone[data["dataset"]] = event.seq
        elif event.kind == "dataset_access":
            dataset = data["dataset"]
            if dataset not in live:
                where = (
                    f"discarded at event #{gone[dataset]}"
                    if dataset in gone
                    else "never registered"
                )
                violations.append(
                    Violation(
                        "no_use_after_discard",
                        event.seq,
                        f"partition {data['index']} of dataset {dataset!r} "
                        f"read on {data['node']!r} but the dataset was {where}",
                    )
                )
    return violations


# -------------------------------------------------------------- §5 recovery


def check_recovery_sound(trace: Trace) -> List[Violation]:
    """No recovered dataset partition is read before its recompute lands.

    ``recovery_started`` declares the master's plan: the ``recomputed``
    list names ``(dataset, index)`` pairs whose contents are *gone* until a
    re-executed stage stores them again.  A ``dataset_access`` touching a
    pending pair — directly, or through a composite one of whose members is
    pending — means the engine consumed data it had not yet rebuilt.  A
    pending pair is settled by a matching ``partition_stored``, by a fresh
    registration of the dataset, or by its discard (the dead-data arm).
    Pairs still pending at the end of the trace were never rebuilt at all.
    """
    violations: List[Violation] = []
    pending: Dict[tuple, int] = {}  # (dataset, index) -> seq of recovery_started
    members_of: Dict[str, List[str]] = {}  # composite id -> member dataset ids
    for event in trace:
        data = event.data
        if event.kind == "recovery_started":
            for dataset, index in data["recomputed"]:
                pending[(dataset, index)] = event.seq
        elif event.kind == "partition_stored":
            pending.pop((data["dataset"], data["index"]), None)
        elif event.kind in ("dataset_registered", "dataset_discarded"):
            dataset = data["dataset"]
            for key in [k for k in pending if k[0] == dataset]:
                del pending[key]
        elif event.kind == "composite_registered":
            members_of[data["dataset"]] = list(data["members"])
        elif event.kind == "dataset_access":
            dataset = data["dataset"]
            touched = [dataset] + members_of.get(dataset, [])
            for target in touched:
                hits = [k for k in pending if k[0] == target]
                if not hits:
                    continue
                first = min(hits, key=lambda k: pending[k])
                violations.append(
                    Violation(
                        "recovery_sound",
                        event.seq,
                        f"dataset {dataset!r} read on {data['node']!r} while "
                        f"partition {first[1]} of {target!r} was still pending "
                        f"recompute (recovery_started at event "
                        f"#{pending[first]})",
                    )
                )
    for (dataset, index), seq in sorted(pending.items(), key=lambda kv: kv[1]):
        violations.append(
            Violation(
                "recovery_sound",
                seq,
                f"partition {index} of dataset {dataset!r} was marked for "
                f"recompute but never rebuilt or discarded",
            )
        )
    return violations


# ------------------------------------------------------------- cache soundness


def check_cache_sound(trace: Trace) -> List[Violation]:
    """A cache hit never changes output bytes vs. cold execution.

    Replays the ``cache_admit``/``cache_hit``/``cache_invalidate`` protocol
    of :mod:`repro.cache`:

    * a hit on a fingerprint admitted earlier in the trace must report the
      exact nominal bytes the admit recorded (store-tier hits may predate
      the trace — those are only checked against their materialisation);
    * a cluster-tier hit must not land on a fingerprint whose entry was
      invalidated after its latest admit (the entry should be gone);
    * the output dataset a hit materialises must register with exactly the
      hit's bytes (unless an incremental choose discards it first).

    Traces from cache-disabled runs contain none of these events and pass
    vacuously — the golden traces stay authoritative.
    """
    violations: List[Violation] = []
    admitted: Dict[str, tuple] = {}  # fingerprint -> (nbytes, seq)
    invalidated: Dict[str, int] = {}  # fingerprint -> seq (since last admit)
    expect: Dict[str, tuple] = {}  # dataset id -> (nbytes, seq of the hit)
    for event in trace:
        data = event.data
        if event.kind == "cache_admit":
            admitted[data["fingerprint"]] = (data["nbytes"], event.seq)
            invalidated.pop(data["fingerprint"], None)
        elif event.kind == "cache_invalidate":
            invalidated[data["fingerprint"]] = event.seq
        elif event.kind == "cache_hit":
            fingerprint = data["fingerprint"]
            known = admitted.get(fingerprint)
            if known is not None and known[0] != data["nbytes"]:
                violations.append(
                    Violation(
                        "cache_sound",
                        event.seq,
                        f"hit on fingerprint {fingerprint!r} served "
                        f"{data['nbytes']} bytes but the admit at event "
                        f"#{known[1]} recorded {known[0]} bytes",
                    )
                )
            if data["tier"] == "cluster" and fingerprint in invalidated:
                violations.append(
                    Violation(
                        "cache_sound",
                        event.seq,
                        f"cluster-tier hit on fingerprint {fingerprint!r} "
                        f"although its entry was invalidated at event "
                        f"#{invalidated[fingerprint]} and never re-admitted",
                    )
                )
            expect[data["dataset"]] = (data["nbytes"], event.seq)
        elif event.kind == "dataset_registered":
            pending = expect.pop(data["dataset"], None)
            if pending is not None and pending[0] != data["nbytes"]:
                violations.append(
                    Violation(
                        "cache_sound",
                        event.seq,
                        f"dataset {data['dataset']!r} registered with "
                        f"{data['nbytes']} bytes but the cache hit at event "
                        f"#{pending[1]} promised {pending[0]} bytes",
                    )
                )
        elif event.kind == "branch_discarded":
            # an incremental choose dropped the hit's pending output before
            # materialisation: nothing left to compare
            expect.pop(data["dataset"], None)
    return violations


# ------------------------------------------------------- profiler conservation

#: relative tolerance of the span-conservation arithmetic (the engine sums
#: exact cost-model floats; only the final ``now + total`` rounding drifts)
_PROFILE_TOL = 1e-9


def check_profile_conserved(trace: Trace) -> List[Violation]:
    """Span events must tile the makespan exactly (profiler conservation).

    Replays the spans ``repro.prof`` reconstructs — ``stage_completed``
    events carrying the wall-time breakdown, plus ``span`` events for
    non-stage clock advances — and verifies, self-contained (no profiler
    import):

    * each span's ``io + compute + network + overhead`` equals its
      ``finished - started`` wall to 1e-9 (nothing inside a span escapes
      categorisation);
    * consecutive spans are contiguous: no gap and no overlap, so the
      spans tile ``[first started, last finished]`` and per-span category
      totals sum to the makespan;
    * no node's ``per_node_io + per_node_compute`` share exceeds the
      span's wall (a node cannot be busier than the span it is busy in);
    * no event is timestamped after the last span's ``finished`` — time
      past the final span would be unattributable.

    Traces recorded before the profile fields existed contain no such
    spans and pass vacuously.
    """
    violations: List[Violation] = []
    spans: List[tuple] = []  # (seq, started, finished)
    last_t = None
    last_seq = 0
    for event in trace:
        data = event.data
        if event.t is not None and (last_t is None or event.t > last_t):
            last_t, last_seq = event.t, event.seq
        is_span = event.kind == "span" or (
            event.kind == "stage_completed"
            and "io" in data
            and "per_node_io" in data
        )
        if not is_span:
            continue
        started, finished = data["started"], data["finished"]
        wall = finished - started
        tol = _PROFILE_TOL * max(1.0, abs(finished))
        parts = data["io"] + data["compute"] + data["network"] + data["overhead"]
        if abs(parts - wall) > tol:
            violations.append(
                Violation(
                    "profile_conserved",
                    event.seq,
                    f"span [{started}, {finished}] has wall {wall} but its "
                    f"components sum to {parts} "
                    f"({abs(parts - wall)} seconds unattributed)",
                )
            )
        shares = {}
        for node, seconds in data["per_node_io"].items():
            shares[node] = shares.get(node, 0.0) + seconds
        for node, seconds in data["per_node_compute"].items():
            shares[node] = shares.get(node, 0.0) + seconds
        for node, share in sorted(shares.items()):
            if share > wall + tol:
                violations.append(
                    Violation(
                        "profile_conserved",
                        event.seq,
                        f"node {node!r} carries {share} busy seconds inside a "
                        f"span of wall {wall} (share exceeds the wall)",
                    )
                )
        spans.append((event.seq, started, finished))
    for (_, _, prev_end), (seq, started, _) in zip(spans, spans[1:]):
        tol = _PROFILE_TOL * max(1.0, abs(prev_end))
        if started > prev_end + tol:
            violations.append(
                Violation(
                    "profile_conserved",
                    seq,
                    f"gap of {started - prev_end} seconds before the span "
                    f"starting at {started}: that time is unattributable",
                )
            )
        elif started < prev_end - tol:
            violations.append(
                Violation(
                    "profile_conserved",
                    seq,
                    f"span starting at {started} overlaps the previous span "
                    f"ending at {prev_end}: that time would be double-counted",
                )
            )
    if spans and last_t is not None:
        end = spans[-1][2]
        if last_t > end + _PROFILE_TOL * max(1.0, abs(end)):
            violations.append(
                Violation(
                    "profile_conserved",
                    last_seq,
                    f"event at t={last_t} lies {last_t - end} seconds past the "
                    f"final span (time after the last span is unattributable)",
                )
            )
    return violations


# ----------------------------------------------------------------- aggregation

ALL_CHECKS = {
    "depth_first": check_depth_first,
    "amm_ranking": check_amm_ranking,
    "pruning_sound": check_pruning_sound,
    "no_use_after_discard": check_no_use_after_discard,
    "recovery_sound": check_recovery_sound,
    "cache_sound": check_cache_sound,
    "profile_conserved": check_profile_conserved,
}


def validate_trace(
    trace: Optional[Trace],
    alpha: Optional[float] = None,
    table1: Optional[Mapping[str, Any]] = None,
) -> List[Violation]:
    """Run all seven invariant checkers; returns every violation found."""
    if trace is None:
        return []
    violations: List[Violation] = []
    violations.extend(check_depth_first(trace))
    violations.extend(check_amm_ranking(trace, alpha=alpha))
    violations.extend(check_pruning_sound(trace, table1=table1))
    violations.extend(check_no_use_after_discard(trace))
    violations.extend(check_recovery_sound(trace))
    violations.extend(check_cache_sound(trace))
    violations.extend(check_profile_conserved(trace))
    return violations


def assert_valid(
    trace: Optional[Trace],
    alpha: Optional[float] = None,
    table1: Optional[Mapping[str, Any]] = None,
) -> None:
    """Raise :class:`InvariantViolation` if any invariant is violated."""
    violations = validate_trace(trace, alpha=alpha, table1=table1)
    if violations:
        raise InvariantViolation(violations)


# Benchmark-harness hook: with auto-validation on, every ``run_mdf`` call
# asserts the invariants after execution (``python -m repro.bench --validate``).
_AUTO_VALIDATE = False


def set_auto_validate(enabled: bool) -> None:
    global _AUTO_VALIDATE
    _AUTO_VALIDATE = bool(enabled)


def auto_validate_enabled() -> bool:
    return _AUTO_VALIDATE
