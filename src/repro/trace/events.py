"""Typed decision-trace events and the per-job :class:`Trace`.

The engine's two contributions — branch-aware scheduling (Algorithm 1) and
anticipatory memory management (Algorithm 2) — are *decision procedures*.
Aggregate counters (``cluster/metrics.py``) can say *how many* evictions
happened but not *whether each one ranked partitions by*
``pre(d) = acc(d) · δ(n, d) · α``.  This module records every consequential
decision as a typed event with a simulated-clock timestamp, so invariant
checkers (:mod:`repro.trace.validate`) and regression tests can replay the
exact decision sequence after a run.

Every event kind has a fixed payload schema (:data:`EVENT_SCHEMA`); the
trace rejects unknown kinds and malformed payloads at emission time, which
keeps instrumentation drift from silently invalidating the validators.

Exports: canonical JSONL (byte-stable across runs — only simulated time is
recorded, never wall-clock) and the Chrome ``trace_event`` format for
visual inspection in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

logger = logging.getLogger("repro.trace")

#: kind -> exact payload field set.  Emission is strict both ways: missing
#: and unexpected fields are errors, so the schema documented in
#: docs/tracing.md is enforced, not advisory.
EVENT_SCHEMA: Dict[str, frozenset] = {
    # -- scheduling decisions (Algorithm 1)
    "stage_scheduled": frozenset(
        {"stage", "branch", "scheduler", "rationale", "ready", "ready_choose", "successors_ready"}
    ),
    # started/finished plus the wall-time component breakdown (io, compute,
    # network, overhead sum to finished - started) and the per-node io and
    # compute walls the stage's slowest node was chosen from — everything
    # the profiler (repro.prof) needs to attribute the stage's simulated
    # seconds without re-running the cost model.
    "stage_completed": frozenset(
        {
            "stage",
            "ops",
            "branch",
            "started",
            "finished",
            "io",
            "compute",
            "network",
            "overhead",
            "per_node_io",
            "per_node_compute",
        }
    ),
    # a clock advance outside any stage: choose evaluation + selection
    # ("choose_evaluation"), a deferred tail's store ("store_commit"), a
    # periodic checkpoint write ("checkpoint") or a §5 checkpoint reload
    # ("recovery_reload").  Together with stage_completed these spans tile
    # [0, completion_time] exactly — check_profile_conserved enforces it.
    "span": frozenset(
        {
            "activity",
            "branch",
            "started",
            "finished",
            "io",
            "compute",
            "network",
            "overhead",
            "per_node_io",
            "per_node_compute",
        }
    ),
    "task_dispatched": frozenset({"stage", "num_tasks"}),
    # -- choose protocol (Definition 3.3, §4.2)
    "choose_evaluation": frozenset({"evaluator", "dataset", "pipelined"}),
    "branch_evaluated": frozenset({"choose", "branch", "score", "pipelined"}),
    "branch_discarded": frozenset({"choose", "branch", "dataset", "materialized"}),
    "branch_pruned": frozenset({"choose", "branch", "reason", "stages", "plan", "properties"}),
    "choose_finalized": frozenset({"choose", "kept", "discarded", "pruned", "scores"}),
    # -- dataset lifecycle (R3)
    "dataset_registered": frozenset({"dataset", "producer", "nbytes", "partitions"}),
    "composite_registered": frozenset({"dataset", "members", "producer"}),
    "dataset_discarded": frozenset({"dataset"}),
    # seconds is the charged read time; reload marks a miss that streams a
    # partition spilled by an earlier eviction (the profiler splits these
    # out of plain disk io as "eviction-induced reload" time)
    "dataset_access": frozenset(
        {"dataset", "index", "node", "hit", "nbytes", "seconds", "reload"}
    ),
    # a partition landing at a node (tier "memory" or "disk").  Distinct
    # from dataset_access so the trace→metrics bridge can rebuild the
    # per-tier byte-written counters without guessing store sizes.
    "partition_stored": frozenset({"dataset", "index", "node", "nbytes", "tier"}),
    # the source stage streaming the job input from distributed storage.
    # Not a dataset_access: the raw input is never a registered dataset,
    # and check_no_use_after_discard would rightly reject it as one.
    "source_read": frozenset({"dataset", "index", "node", "nbytes"}),
    # -- memory management (Algorithm 2)
    "partition_evicted": frozenset(
        {"node", "dataset", "index", "nbytes", "spilled", "policy", "alpha", "ranking"}
    ),
    # -- fault tolerance (§5)
    "checkpoint_written": frozenset({"dataset", "nbytes"}),
    "node_failed": frozenset({"node", "permanent", "lost", "reloadable"}),
    # a permanently failed node leaving the cluster; its partition shares
    # rebalance across the survivors (graceful degradation)
    "node_decommissioned": frozenset({"node", "reason"}),
    # one partition recovered: action is "reload" (disk/checkpoint copy),
    # "recompute" (re-executed from lineage) or "dropped" (dead data, free)
    "recovery": frozenset({"dataset", "index", "nbytes", "node", "action"}),
    # the master's recovery plan for one node failure: lists of
    # [dataset, index] pairs per classification (a/b/c of §5)
    "recovery_started": frozenset(
        {"node", "stage_index", "permanent", "reloaded", "recomputed", "dropped"}
    ),
    # a stage re-run to rebuild lost partitions; score_reused marks branch
    # tails whose choose score survived in the master's ChooseScoreStore
    "stage_reexecuted": frozenset({"stage", "branch", "dataset", "cause", "score_reused"}),
    # transient task failures retried with backoff (charged per attempt)
    "task_retried": frozenset({"node", "attempts", "seconds"}),
    "task_retries_exhausted": frozenset({"node", "attempts", "max_retries"}),
    # a scheduled FailureEvent/TaskFailureEvent that never fired (its stage
    # index was past the end of the schedule) — benchmark-config rot guard
    "failure_unfired": frozenset({"failure_kind", "node", "stage_index"}),
    # -- lineage-fingerprint result cache (repro.cache)
    # a stage served from cached bytes instead of executing its operators;
    # tier is "cluster" (live partitions, charged by residency) or "store"
    # (the persistent disk tier).  saved_seconds is the modelled recompute
    # cost the hit avoided (reads already charged separately).
    "cache_hit": frozenset(
        {"stage", "dataset", "fingerprint", "tier", "nbytes", "saved_seconds"}
    ),
    # a consulted stage that executed for real.  reason: "cold" (no entry),
    # "not-profitable" (reading the entry would cost more than recomputing
    # under the cost model), "unfingerprintable" (no canonical identity)
    "cache_miss": frozenset({"stage", "fingerprint", "reason"}),
    # a freshly materialised output remembered by the cache; tier records
    # whether the persistent store also kept a copy ("cluster+store")
    "cache_admit": frozenset(
        {"fingerprint", "dataset", "nbytes", "partitions", "tier"}
    ),
    # an entry dropped: "dataset-discarded" (eager, on release), "backing-
    # lost" (lazy, at lookup), "node-failure" (post-recovery revalidation)
    "cache_invalidate": frozenset({"fingerprint", "dataset", "reason"}),
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded decision: sequence number, simulated time, kind, payload."""

    seq: int
    t: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t": self.t, "kind": self.kind, "data": self.data}

    def to_json(self) -> str:
        """Canonical one-line JSON: sorted keys, compact separators."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


class Trace:
    """An append-only, strictly-typed event log for one job execution.

    The cluster owns one trace per run (reset with the cluster); the master,
    executor and memory manager all emit into it through the cluster.  A
    disabled trace (``enabled = False``) turns every emit into a no-op.

    **Subscriber bus** (``repro.live``): callbacks registered with
    :meth:`subscribe` are invoked *after* each event is committed to
    ``self.events``, in registration order.  Because notification happens
    strictly post-append, every subscriber observes exactly the committed
    event sequence — at any point, the events a subscriber has seen are a
    prefix of the final trace.  Subscribers are pure observers: they must
    not emit events or mutate engine state (a subscriber that did would
    break the byte-identity contract between monitored and unmonitored
    runs).  A raising subscriber is detached after a logged warning — one
    bad dashboard must never kill a job — and the optional
    ``on_subscriber_error`` hook (wired by the cluster to the
    ``live_subscriber_errors`` obs counter) is informed.
    """

    def __init__(self, clock=None, strict: bool = True):
        self.events: List[TraceEvent] = []
        self._clock = clock  # duck-typed: anything with a ``.now`` float
        self.strict = strict
        self.enabled = True
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        #: called as ``hook(subscriber, exception)`` when a subscriber
        #: raises (after the subscriber has been detached); set by the
        #: owning cluster to count ``live_subscriber_errors``
        self.on_subscriber_error: Optional[
            Callable[[Callable[[TraceEvent], None], BaseException], None]
        ] = None

    # ---------------------------------------------------------- subscribers
    def subscribe(
        self, callback: Callable[[TraceEvent], None]
    ) -> Callable[[TraceEvent], None]:
        """Register a callback invoked with every *committed* event.

        Callbacks run synchronously, in registration order, after the
        event is appended.  Returns the callback (handy for later
        :meth:`unsubscribe`).  Registering the same callable twice is an
        error — it would double-deliver every event.
        """
        if callback in self._subscribers:
            raise ValueError(f"subscriber {callback!r} already registered")
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> bool:
        """Remove a subscriber; returns whether it was registered."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            return False
        return True

    @property
    def subscribers(self) -> List[Callable[[TraceEvent], None]]:
        """The currently attached subscribers (a copy, in call order)."""
        return list(self._subscribers)

    def _notify(self, event: TraceEvent) -> None:
        """Deliver one committed event to every subscriber, in order.

        Exception isolation: a raising subscriber is detached (so it can
        never raise twice), the failure is logged as a warning, and the
        ``on_subscriber_error`` hook is told — the emitting engine code
        path never sees the exception.
        """
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception as exc:
                try:
                    self._subscribers.remove(callback)
                except ValueError:
                    pass  # already detached (e.g. by a prior event)
                logger.warning(
                    "trace subscriber %r raised %r on %s event (seq %d); "
                    "detached",
                    callback,
                    exc,
                    event.kind,
                    event.seq,
                )
                hook = self.on_subscriber_error
                if hook is not None:
                    hook(callback, exc)

    # ------------------------------------------------------------- recording
    def emit(self, kind: str, **data: Any) -> Optional[TraceEvent]:
        """Append one event, timestamped with the bound simulated clock.

        Return contract: the *committed* :class:`TraceEvent` — or ``None``
        if and only if the trace is disabled (``enabled = False``), in
        which case nothing was recorded and no subscriber is invoked.
        Subscribers are therefore never called with ``None``: every
        notification carries a real, already-appended event.  On a strict
        trace a malformed emission raises *before* anything is appended,
        so subscribers never observe an event the trace rejected.
        """
        if not self.enabled:
            return None
        if self.strict:
            schema = EVENT_SCHEMA.get(kind)
            if schema is None:
                raise ValueError(f"unknown trace event kind {kind!r}")
            missing = schema - data.keys()
            extra = data.keys() - schema
            if missing or extra:
                raise ValueError(
                    f"malformed {kind!r} event: missing={sorted(missing)} "
                    f"unexpected={sorted(extra)}"
                )
        t = float(self._clock.now) if self._clock is not None else 0.0
        event = TraceEvent(len(self.events), t, kind, data)
        self.events.append(event)
        if self._subscribers:
            self._notify(event)
        return event

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> Dict[str, int]:
        """Event-count histogram by kind (debug/report helper)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # --------------------------------------------------------------- exports
    def to_jsonl(self) -> str:
        """Canonical JSONL: one sorted-key compact JSON object per line.

        Byte-stable across re-executions of the same job: timestamps are
        simulated seconds and all payloads are deterministic, so golden
        traces can be compared byte-for-byte.
        """
        return "".join(event.to_json() + "\n" for event in self.events)

    def save_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild a trace from its JSONL export (validators accept it)."""
        trace = cls(strict=False)
        for line in text.splitlines():
            if not line.strip():
                continue
            raw = json.loads(line)
            trace.events.append(
                TraceEvent(raw["seq"], raw["t"], raw["kind"], raw.get("data", {}))
            )
        return trace

    @classmethod
    def load_jsonl(cls, path) -> "Trace":
        with open(path) as fh:
            return cls.from_jsonl(fh.read())

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (open in chrome://tracing).

        Stage executions become complete ("X") events — one timeline row per
        branch — and every decision (prune, evict, discard, failure, choose)
        becomes a global instant ("i") event, so depth-first traversal and
        eviction storms are visible at a glance.
        """
        tids: Dict[str, int] = {}

        def tid_of(branch: Optional[str]) -> int:
            key = branch or "main"
            if key not in tids:
                tids[key] = len(tids) + 1
            return tids[key]

        instants = {
            "branch_pruned",
            "branch_discarded",
            "partition_evicted",
            "dataset_discarded",
            "choose_finalized",
            "checkpoint_written",
            "node_failed",
            "node_decommissioned",
            "recovery",
            "recovery_started",
            "stage_reexecuted",
            "task_retried",
            "task_retries_exhausted",
            "failure_unfired",
            "cache_hit",
            "cache_miss",
            "cache_admit",
            "cache_invalidate",
        }
        out: List[Dict[str, Any]] = []
        for event in self.events:
            data = event.data
            if event.kind == "stage_completed":
                out.append(
                    {
                        "name": data["stage"],
                        "cat": "stage",
                        "ph": "X",
                        "ts": data["started"] * 1e6,
                        "dur": max(data["finished"] - data["started"], 0.0) * 1e6,
                        "pid": 0,
                        "tid": tid_of(data.get("branch")),
                        "args": data,
                    }
                )
            elif event.kind == "span":
                out.append(
                    {
                        "name": data["activity"],
                        "cat": "span",
                        "ph": "X",
                        "ts": data["started"] * 1e6,
                        "dur": max(data["finished"] - data["started"], 0.0) * 1e6,
                        "pid": 0,
                        "tid": tid_of(data.get("branch")),
                        "args": data,
                    }
                )
            elif event.kind in instants:
                out.append(
                    {
                        "name": event.kind,
                        "cat": "decision",
                        "ph": "i",
                        "s": "g",
                        "ts": event.t * 1e6,
                        "pid": 0,
                        "tid": 0,
                        "args": data,
                    }
                )
        meta = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": name}}
            for name, tid in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        return {"traceEvents": meta + out, "displayTimeUnit": "ms"}

    def save_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Trace(events={len(self.events)})"
