"""Decision-trace observability: typed events, exports, invariant checkers.

See docs/tracing.md for the event schema and the validator API, and
docs/paper_mapping.md for the algorithm → validator correspondence.
"""

from .events import EVENT_SCHEMA, Trace, TraceEvent
from .validate import (
    ALL_CHECKS,
    InvariantViolation,
    Violation,
    assert_valid,
    auto_validate_enabled,
    check_amm_ranking,
    check_cache_sound,
    check_depth_first,
    check_no_use_after_discard,
    check_profile_conserved,
    check_pruning_sound,
    check_recovery_sound,
    set_auto_validate,
    validate_trace,
)

__all__ = [
    "ALL_CHECKS",
    "EVENT_SCHEMA",
    "InvariantViolation",
    "Trace",
    "TraceEvent",
    "Violation",
    "assert_valid",
    "auto_validate_enabled",
    "check_amm_ranking",
    "check_cache_sound",
    "check_depth_first",
    "check_no_use_after_discard",
    "check_profile_conserved",
    "check_pruning_sound",
    "check_recovery_sound",
    "set_auto_validate",
    "validate_trace",
]
