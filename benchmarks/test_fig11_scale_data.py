"""Figs. 11 + 14: completion time and hit ratio vs per-worker data size."""

from repro.bench import fig11_14_scale_data

from conftest import run_figure


def test_fig11_14_scale_data(benchmark):
    run_figure(benchmark, fig11_14_scale_data)
