"""Appendix B / Theorem 4.3: DFS vs BFS maintained-dataset counts."""

from repro.bench import appendix_b_counts

from conftest import run_figure


def test_appendix_b_counts(benchmark):
    run_figure(benchmark, appendix_b_counts)
