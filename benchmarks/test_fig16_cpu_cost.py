"""Fig. 16: relative completion time vs branch processing cost."""

from repro.bench import fig16_cpu_cost

from conftest import run_figure


def test_fig16_cpu_cost(benchmark):
    run_figure(benchmark, fig16_cpu_cost)
