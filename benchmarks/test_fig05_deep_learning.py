"""Fig. 5: deep-learning job completion times across exploration modes.

Reproduces the four bar groups: weights-only, hyper-parameters-only,
exhaustive W x R x M, and the early-choose pattern, each under
sequential / 4-parallel / 8-parallel / MDF execution.
"""

from repro.bench import fig5_deep_learning

from conftest import run_figure


def test_fig05_deep_learning(benchmark):
    run_figure(benchmark, fig5_deep_learning)
