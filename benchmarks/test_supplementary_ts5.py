"""Supplementary: five-explorable time-series job with chained scopes."""

from repro.bench import supplementary_full_time_series

from conftest import run_figure


def test_supplementary_full_time_series(benchmark):
    run_figure(benchmark, supplementary_full_time_series)
