"""Table 1: the optimisation matrix for choose evaluator/selection pairs."""

from repro.bench import table1_optimizations

from conftest import run_figure


def test_table1_optimizations(benchmark):
    run_figure(benchmark, table1_optimizations)
