"""§5: one mid-explore node failure vs failure-free (LRU/AMM x ckpt on/off)."""

from repro.bench import failure_recovery

from conftest import run_figure


def test_failure_recovery(benchmark):
    run_figure(benchmark, failure_recovery)
