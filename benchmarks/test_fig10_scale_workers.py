"""Figs. 10 + 13: processing rate and memory-hit ratio vs worker count."""

from repro.bench import fig10_13_scale_workers

from conftest import run_figure


def test_fig10_13_scale_workers(benchmark):
    run_figure(benchmark, fig10_13_scale_workers)
