"""Fig. 9: synthetic job against Spark-like baselines.

Spark (sequential), Spark (YARN), Spark (cache), SEEP (BFS) and SEEP (MDF)
as the nested branching factor grows (|B1| = |B2|).
"""

from repro.bench import fig9_spark_comparison

from conftest import run_figure


def test_fig09_spark_comparison(benchmark):
    run_figure(benchmark, fig9_spark_comparison)
