"""Ablations of the design choices DESIGN.md §5 calls out.

* choose split — evaluator at workers (paper design) vs whole choose at
  the master (branch results cross the network, evaluation serialises);
* branch-aware vs breadth-first scheduling on the same engine — peak
  stored datasets and completion time (the engine-level counterpart of the
  Appendix B analysis);
* the AMM preference formula vs its degenerate variants (access-count
  only, size only).
"""

from repro.cluster import GB, Cluster
from repro.engine import EngineConfig, run_mdf


def test_ablation_choose_split(benchmark, ablation_mdf, ablation_cluster):
    """Worker-side evaluators beat evaluate-at-master (network + serial)."""
    mdf = ablation_mdf

    def run():
        out = {}
        for on_master in (False, True):
            cluster = ablation_cluster()
            # the master ablation needs the separate-evaluation path, so
            # incremental pipelining is disabled for both sides of the
            # comparison to isolate the placement effect
            config = EngineConfig(
                evaluator_on_master=on_master, incremental_choose=False
            )
            result = run_mdf(mdf, cluster, scheduler="bas", memory="amm", config=config)
            out["master" if on_master else "workers"] = result.completion_time
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(times)
    print(f"\nchoose split ablation: {times}")
    assert times["workers"] <= times["master"], (
        "evaluating at the workers must not be slower than shipping every "
        "branch result to the master"
    )


def test_ablation_bas_vs_bfs_peak_datasets(benchmark, ablation_mdf, ablation_cluster):
    """BAS maintains fewer datasets than BFS on the real engine (Thm 4.3)."""
    mdf = ablation_mdf

    def run():
        out = {}
        for sched in ("bas", "bfs"):
            cluster = ablation_cluster()
            result = run_mdf(mdf, cluster, scheduler=sched, memory="amm")
            out[sched] = {
                "time": result.completion_time,
                "peak_datasets": result.metrics.peak_datasets_stored,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"{k}_{m}": v for k, d in out.items() for m, v in d.items()}
    )
    print(f"\nBAS vs BFS: {out}")
    assert out["bas"]["peak_datasets"] <= out["bfs"]["peak_datasets"]
    assert out["bas"]["time"] <= out["bfs"]["time"]


def test_ablation_amm_formula(benchmark, ablation_mdf, ablation_cluster):
    """Full AMM preference vs access-only and size-only degenerates."""
    mdf = ablation_mdf

    def run():
        out = {}
        for policy in ("amm", "amm-access-only", "amm-size-only", "lru"):
            cluster = ablation_cluster()
            result = run_mdf(mdf, cluster, scheduler="bas", memory=policy)
            out[policy] = result.completion_time
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(times)
    print(f"\nAMM formula ablation: {times}")
    # the full formula must not lose badly to either degenerate variant
    assert times["amm"] <= times["amm-size-only"] * 1.10
    assert times["amm"] <= times["amm-access-only"] * 1.10


def test_ablation_eager_release(benchmark, ablation_mdf, ablation_cluster):
    """Non-eager release + AMM's free drops vs eager refcount release.

    Eagerly freeing consumed intermediates is an idealisation real systems
    skip; AMM recovers most of its benefit by dropping acc=0 data at zero
    spill cost when eviction pressure arrives."""
    mdf = ablation_mdf

    def run():
        out = {}
        for eager in (False, True):
            cluster = ablation_cluster()
            config = EngineConfig(eager_release=eager)
            result = run_mdf(mdf, cluster, scheduler="bas", memory="amm", config=config)
            out["eager" if eager else "lazy"] = result.completion_time
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(times)
    print(f"\neager-release ablation: {times}")
    # free drops keep lazy within a modest factor of the eager ideal
    assert times["lazy"] <= times["eager"] * 1.5


def test_ablation_model_based_hint(benchmark):
    """Model-based scheduling hints on a smooth score landscape.

    With scores linear in the explorable, the regression hint must find
    the winner while executing no more branches than the sorted baseline
    (both are bounded by the non-exhaustive first-1 selection)."""
    from repro import CallableEvaluator, KThreshold, MDFBuilder, MB
    from repro.engine import ModelBasedHint, SortedHint

    def build():
        b = MDFBuilder("hint-ablation")
        src = b.read_data(list(range(500)), name="src", nominal_bytes=256 * MB)
        return (
            src.explore(
                {"t": [50, 150, 250, 350, 450]},
                lambda pipe, p: pipe.transform(
                    lambda xs, t=p["t"]: [x for x in xs if x < t],
                    name=f"f{p['t']}",
                ),
                name="exp",
            )
            .choose(
                CallableEvaluator(len, name="count"),
                KThreshold(1, 300.0, above=True),
                name="ch",
            )
            .write()
            .builder.build()
        )

    def run():
        out = {}
        for label, hint in (("sorted", SortedHint()), ("model", ModelBasedHint())):
            cluster = Cluster(4, 1 * GB)
            config = EngineConfig(hint=hint)
            result = run_mdf(build(), cluster, scheduler="bas", memory="amm", config=config)
            decision = result.decision_for("ch")
            out[label] = len(decision.scores)
        return out

    scored = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scored)
    print(f"\nhint ablation (branches scored before stopping): {scored}")
    assert scored["model"] <= scored["sorted"] + 1


def test_fault_tolerance_overhead(benchmark, ablation_mdf_small, ablation_cluster):
    """§5: recovery reads checkpointed partitions instead of re-running
    branches; the overhead of a mid-job worker failure stays small."""
    from repro import FailureInjector

    mdf = ablation_mdf_small

    def run():
        clean = run_mdf(mdf, ablation_cluster(), scheduler="bas", memory="amm")
        config = EngineConfig(
            failures=FailureInjector.at_stages([(3, "worker-0"), (9, "worker-4")])
        )
        failed = run_mdf(mdf, ablation_cluster(), scheduler="bas", memory="amm", config=config)
        return {
            "clean": clean.completion_time,
            "with_failures": failed.completion_time,
            "recoveries": failed.metrics.recoveries,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(out)
    print(f"\nfault-tolerance overhead: {out}")
    assert out["with_failures"] >= out["clean"]
    assert out["with_failures"] <= out["clean"] * 2.0  # cheap recovery
    assert out["recoveries"] > 0


def test_straggler_mitigation(benchmark, ablation_mdf_small, ablation_cluster):
    """§5: speculative re-execution bounds the damage of a slow worker."""
    from repro import SpeculationConfig, StragglerProfile

    profile = StragglerProfile({"worker-0": 8.0})

    def run():
        out = {}
        clean = run_mdf(ablation_mdf_small, ablation_cluster(), scheduler="bas", memory="amm")
        out["clean"] = clean.completion_time
        for label, spec in (
            ("unmitigated", SpeculationConfig(enabled=False)),
            ("speculative", SpeculationConfig(enabled=True)),
        ):
            config = EngineConfig(stragglers=profile, speculation=spec)
            result = run_mdf(
                ablation_mdf_small, ablation_cluster(), scheduler="bas", memory="amm", config=config
            )
            out[label] = result.completion_time
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(times)
    print(f"\nstraggler mitigation: {times}")
    assert times["speculative"] < times["unmitigated"]
    assert times["clean"] <= times["speculative"]
