"""§5 claim: master-side selection throughput (choose invocations/s)."""

from repro.bench import choose_throughput

from conftest import run_figure


def test_choose_throughput(benchmark):
    run_figure(benchmark, choose_throughput)
