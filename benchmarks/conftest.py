"""Shared helpers and fixtures for the benchmark targets.

Each figure benchmark runs one experiment from ``repro.bench.figures``
exactly once under pytest-benchmark (wall-clock of the whole harness),
prints the paper-style table, records the simulated rows in
``extra_info`` and asserts the figure's shape checks (who wins, by
roughly what factor).

The workload/cluster setup the ablation and policy benchmarks used to
duplicate per test lives here as fixtures: ``ablation_mdf`` /
``ablation_cluster`` pin the DESIGN.md §5 ablation rig, and the
``lab_workload`` fixture parametrises a benchmark over the policy lab's
smoke zoo (``repro.lab.workloads``) — one source of truth shared with
``python -m repro.lab`` and the differential tests.
"""

from __future__ import annotations

import pytest

from repro.cluster import GB, Cluster
from repro.lab.workloads import available_workloads, get_workload
from repro.workloads import string_int_pairs, synthetic_mdf


@pytest.fixture(scope="module")
def ablation_mdf():
    """The DESIGN.md §5 ablation subject: a 6×6 synthetic nested grid.

    Module-scoped: the MDF is immutable under execution, so every
    ablation in a module reuses one build."""
    pairs = string_int_pairs(1500)
    return synthetic_mdf(pairs, b1=6, b2=6, nominal_bytes=int(2.5 * GB))


@pytest.fixture(scope="module")
def ablation_mdf_small():
    """The 4×4 variant the fault-tolerance/straggler ablations run."""
    pairs = string_int_pairs(1500)
    return synthetic_mdf(pairs, b1=4, b2=4, nominal_bytes=int(2.5 * GB))


@pytest.fixture
def ablation_cluster():
    """Factory for the ablation rig's cluster (fresh per call)."""

    def make() -> Cluster:
        return Cluster(8, 1 * GB)

    return make


@pytest.fixture(params=sorted(available_workloads("smoke")))
def lab_workload(request):
    """Each policy-lab smoke workload in turn (shared zoo definition)."""
    return get_workload(request.param)


def run_figure(benchmark, figure_fn, **kwargs):
    """Run a figure experiment under pytest-benchmark and check shapes."""
    result = benchmark.pedantic(
        lambda: figure_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(result.as_dict())
    print()
    print(result.render())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{result.figure} shape checks failed: {failed}"
    return result
