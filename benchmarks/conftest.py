"""Shared helpers for the per-figure benchmark targets.

Each benchmark runs one experiment from ``repro.bench.figures`` exactly
once under pytest-benchmark (wall-clock of the whole harness), prints the
paper-style table, records the simulated rows in ``extra_info`` and
asserts the figure's shape checks (who wins, by roughly what factor).
"""

from __future__ import annotations


def run_figure(benchmark, figure_fn, **kwargs):
    """Run a figure experiment under pytest-benchmark and check shapes."""
    result = benchmark.pedantic(
        lambda: figure_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(result.as_dict())
    print()
    print(result.render())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{result.figure} shape checks failed: {failed}"
    return result
