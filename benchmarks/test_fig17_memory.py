"""Figs. 17 + 18: normalised completion time and hit ratio vs memory."""

from repro.bench import fig17_18_memory

from conftest import run_figure


def test_fig17_18_memory(benchmark):
    run_figure(benchmark, fig17_18_memory)
