"""Fig. 8: choose-function variants and scheduling hints.

Compares executing all branches against top-4 selection, first-4 threshold
selection (non-exhaustive pruning), random branch order (12 runs,
min/avg/max) and sorted scheduling hints.
"""

from repro.bench import fig8_choose_variants

from conftest import run_figure


def test_fig08_choose_variants(benchmark):
    run_figure(benchmark, fig8_choose_variants)
