"""Fig. 6: data-profiling (KDE) completion time vs input dataset size."""

from repro.bench import fig6_data_profiling

from conftest import run_figure


def test_fig06_data_profiling(benchmark):
    run_figure(benchmark, fig6_data_profiling)
