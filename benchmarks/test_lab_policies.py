"""Policy-lab benchmarks: every registered scheduler on the smoke zoo.

One benchmark per smoke workload (via the parametrized ``lab_workload``
fixture in conftest).  Each run sweeps the full scheduler registry,
records every policy's simulated completion time in ``extra_info`` and
asserts the lab's differential contract at bench scale: all policies
produce the same outputs and kept branches as ``bfs``.
"""

from repro.engine.policies import available_schedulers


def test_lab_policy_sweep(benchmark, lab_workload):
    schedulers = available_schedulers()

    def run():
        out = {}
        for scheduler in schedulers:
            result, _ = lab_workload.run(scheduler=scheduler, validate=True)
            out[scheduler] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    benchmark.extra_info["workload"] = lab_workload.name
    benchmark.extra_info.update(
        {
            f"completion_{name}": result.completion_time
            for name, result in results.items()
        }
    )

    reference = results["bfs"]
    for name, result in results.items():
        assert repr(result.outputs) == repr(reference.outputs), (
            f"{name} changed the job's outputs on {lab_workload.name}"
        )
        assert {n: d.kept for n, d in result.decisions.items()} == {
            n: d.kept for n, d in reference.decisions.items()
        }, f"{name} changed a choose decision on {lab_workload.name}"
