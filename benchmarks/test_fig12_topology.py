"""Figs. 12 + 15: the impact of MDF topology (120 branches, B1 x B2)."""

from repro.bench import fig12_15_topology

from conftest import run_figure


def test_fig12_15_topology(benchmark):
    run_figure(benchmark, fig12_15_topology)
