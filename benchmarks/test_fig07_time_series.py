"""Fig. 7: time-series analysis completion time vs number of branches."""

from repro.bench import fig7_time_series

from conftest import run_figure


def test_fig07_time_series(benchmark):
    run_figure(benchmark, fig7_time_series)
